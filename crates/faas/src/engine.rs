//! The multi-AZ FaaS fleet engine: event-driven execution of invocation
//! batches against every platform in the catalog, with billing, churn
//! ticks and reactive scaling.
//!
//! The engine is the *only* component that reads `sky-cloud` ground truth.
//! Its clients (the sampling campaign, the router, the experiment
//! harnesses) observe the fleet exclusively through
//! [`InvocationOutcome`]s — the epistemic boundary the paper's tooling
//! lives behind.

use crate::ids::{AccountId, DeploymentId, InstanceId};
use crate::lifecycle::{ExecMode, ExecProfile, StartClass};
use crate::platform::{AzPlatform, CapacityError};
use crate::report::SaafReport;
use crate::request::{
    BatchRequest, InvocationOutcome, InvocationStatus, RequestBody, WorkloadSpec,
};
use sky_cloud::{Arch, AzId, Catalog, FaultKind, FaultPlan, PriceBook, Provider};
use sky_sim::metrics::{MetricHandle, MetricsRegistry, MetricsSnapshot, SpanPhase, SpanTracker};
use sky_sim::{EventQueue, SimDuration, SimRng, SimTime, Slab, SlotKey, TraceLevel, Tracer};
use sky_workloads::PerfModel;
use std::collections::BTreeMap;

/// Tunable platform behaviour constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Root seed for all randomness in the fleet.
    pub seed: u64,
    /// Workload performance model.
    pub perf: PerfModel,
    /// Minimum FI keep-alive after the last invocation (AWS guarantees
    /// about five minutes \[21\]).
    pub keep_alive_min: SimDuration,
    /// Maximum observed keep-alive (drawn uniformly per idle period).
    pub keep_alive_max: SimDuration,
    /// Billed handler overhead added to every sleep probe.
    pub sleep_overhead: SimDuration,
    /// Billed cost of the CPU check in a gated request.
    pub gate_check: SimDuration,
    /// Cold-start initialization delay bounds (latency, not billed).
    pub cold_start_min: SimDuration,
    /// Upper bound of the cold-start delay.
    pub cold_start_max: SimDuration,
    /// Warm dispatch overhead (latency, not billed).
    pub warm_dispatch: SimDuration,
    /// Interval between reactive scale-up checks.
    pub scale_interval: SimDuration,
    /// Probability that a request arriving during a burst (other
    /// executions of the same deployment in flight) reuses an idle warm
    /// FI instead of spreading to a fresh environment. Idle deployments
    /// always reuse. Calibrated so the focus-fastest retry strategy needs
    /// ~5 reissues per request on a 40%-fast zone, the figure the paper
    /// reports for us-west-1b (§4.6).
    pub warm_reuse_prob: f64,
    /// Execution profile applied to every new deployment (per-deployment
    /// overrides via [`FaasEngine::set_exec_profile`]). The default is
    /// the legacy cached lifecycle, which changes nothing.
    pub exec_profile: ExecProfile,
    /// Snapshot-restore initialization latency: deterministic (CRIU-style
    /// restores are dominated by image read-back, not init jitter) and
    /// between `warm_dispatch` and `cold_start_min`.
    pub restore_latency: SimDuration,
    /// CoW-branch initialization latency (page tables only — cheaper
    /// than a full restore).
    pub branch_latency: SimDuration,
    /// Interval between pre-warm pool maintenance ticks.
    pub pool_tick_interval: SimDuration,
}

impl FleetConfig {
    /// Default configuration with the given seed.
    pub fn new(seed: u64) -> Self {
        FleetConfig {
            seed,
            perf: PerfModel::default(),
            keep_alive_min: SimDuration::from_mins(5),
            keep_alive_max: SimDuration::from_mins(9),
            sleep_overhead: SimDuration::from_millis(2),
            gate_check: SimDuration::from_millis(2),
            cold_start_min: SimDuration::from_millis(80),
            cold_start_max: SimDuration::from_millis(250),
            warm_dispatch: SimDuration::from_millis(3),
            scale_interval: SimDuration::from_secs(60),
            warm_reuse_prob: 0.58,
            exec_profile: ExecProfile::default(),
            restore_latency: SimDuration::from_millis(40),
            branch_latency: SimDuration::from_millis(15),
            pool_tick_interval: SimDuration::from_secs(60),
        }
    }
}

/// Errors returned by deployment management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// The AZ is not in the catalog.
    UnknownAz(AzId),
    /// The memory setting is not offered by the provider.
    UnsupportedMemory {
        /// Provider rejecting the setting.
        provider: Provider,
        /// Requested memory in MB.
        memory_mb: u32,
    },
    /// The architecture is not offered by the provider.
    UnsupportedArch {
        /// Provider rejecting the architecture.
        provider: Provider,
        /// Requested architecture.
        arch: Arch,
    },
    /// The account belongs to a different provider than the AZ.
    ProviderMismatch {
        /// The account's provider.
        account: Provider,
        /// The AZ's provider.
        az: Provider,
    },
    /// The account id is unknown.
    UnknownAccount(AccountId),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::UnknownAz(az) => write!(f, "unknown availability zone {az}"),
            DeployError::UnsupportedMemory {
                provider,
                memory_mb,
            } => {
                write!(f, "{provider} does not offer {memory_mb} MB functions")
            }
            DeployError::UnsupportedArch { provider, arch } => {
                write!(f, "{provider} does not offer {arch} functions")
            }
            DeployError::ProviderMismatch { account, az } => {
                write!(f, "account on {account} cannot deploy to {az} zone")
            }
            DeployError::UnknownAccount(a) => write!(f, "unknown account {a}"),
        }
    }
}

impl std::error::Error for DeployError {}

#[derive(Debug, Clone)]
struct Account {
    provider: Provider,
    quota: u32,
    in_flight: u32,
}

/// A function deployment record.
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    /// Identity.
    pub id: DeploymentId,
    /// Owning account.
    pub account: AccountId,
    /// Hosting zone.
    pub az: AzId,
    /// Provider (derived from the zone).
    pub provider: Provider,
    /// Memory setting, MB.
    pub memory_mb: u32,
    /// Architecture.
    pub arch: Arch,
}

/// Engine events address platforms by dense index (`az_idx` into
/// [`FaasEngine::platforms`]) rather than by `AzId`, so the hot path
/// never hashes or clones a zone name.
/// Events are deliberately small: the large [`InvocationStatus`] payload
/// (which carries a full [`SaafReport`]) lives in the engine's response
/// slab and the event holds only its [`SlotKey`], so timer-wheel slot
/// sorts move a few words per event instead of a ~150-byte report.
enum Event {
    Arrival {
        idx: usize,
    },
    /// The function's response reached the client: resolve the outcome or
    /// reissue a declined gated request. `status` keys
    /// [`FaasEngine::response_payloads`]; exactly one handle consumes it.
    Response {
        idx: usize,
        status: SlotKey,
        billed: SimDuration,
        cost: f64,
    },
    /// The FI finished its work (including any decline hold) and returns
    /// to the warm pool. `slot` is the FI's platform slot (stable while
    /// busy); `instance` validates it.
    Release {
        az_idx: u32,
        instance: InstanceId,
        slot: SlotKey,
    },
    Expire {
        az_idx: u32,
        instance: InstanceId,
        slot: SlotKey,
        epoch: u64,
    },
    DayTick {
        day: u64,
    },
    ScaleCheck {
        az_idx: u32,
    },
    /// Recurring pre-warm pool maintenance on one platform; scheduled
    /// only while the platform has at least one pool, so legacy runs see
    /// zero extra events.
    PoolTick {
        az_idx: u32,
    },
    /// A scheduled [`FaultPlan`] event fires: arm the fault on its
    /// platform until `until`. Each plan entry is scheduled exactly once,
    /// so a fault can neither double-fire nor fire outside its window.
    Fault {
        az_idx: u32,
        kind: FaultKind,
        until: SimTime,
    },
}

/// Per-AZ metric handles, resolved once when the platform is
/// instantiated so every hot-path update is a dense-index integer add —
/// the "cheap label interning" contract of `sky_sim::metrics`.
#[derive(Debug, Clone, Copy)]
struct AzMetricHandles {
    /// `faas/requests{az, status}` terminal outcome counters.
    success: MetricHandle,
    declined: MetricHandle,
    throttled: MetricHandle,
    no_capacity: MetricHandle,
    /// Placement attempts (every arrival, retries included).
    attempts: MetricHandle,
    cold_starts: MetricHandle,
    warm_starts: MetricHandle,
    /// Automatic gated-workload reissues.
    gated_retries: MetricHandle,
    /// FIs torn down because their keep-alive lapsed.
    keepalive_evictions: MetricHandle,
    /// Hosts recycled by daily churn / added by reactive scaling.
    hosts_recycled: MetricHandle,
    hosts_added: MetricHandle,
    /// Billed occupancy integral: `memory_mb × billed µs` (integer
    /// GB-seconds substrate — divide by 1024·10⁶ to read GB-s).
    billed_mb_us: MetricHandle,
    /// Invocation spend in integer nano-dollars (each f64 cost rounded
    /// once at record time, so shard merges are order-free).
    cost_nanousd: MetricHandle,
    /// Start classes beyond the legacy cold/warm pair: snapshot
    /// restores, CoW branches, and pre-warm pool hits.
    restored_starts: MetricHandle,
    branched_starts: MetricHandle,
    pooled_starts: MetricHandle,
    /// Pre-warm pool maintenance: instances provisioned ahead of demand,
    /// trimmed back to target, and the occupancy high-water gauge.
    pool_provisioned: MetricHandle,
    pool_trimmed: MetricHandle,
    pool_occupancy: MetricHandle,
    /// Ephemeral-mode FIs torn down right after their invocation.
    ephemeral_retires: MetricHandle,
    /// Snapshot registry lifecycle.
    snapshots_captured: MetricHandle,
    snapshots_evicted: MetricHandle,
    /// Idempotent result-cache outcomes on `Workload` requests.
    result_cache_hits: MetricHandle,
    result_cache_misses: MetricHandle,
    /// Per-attempt dispatch latency distributions.
    dispatch_cold_us: MetricHandle,
    dispatch_restore_us: MetricHandle,
    dispatch_warm_us: MetricHandle,
    /// Final-attempt span phase distributions plus end-to-end.
    span_route_us: MetricHandle,
    span_cold_us: MetricHandle,
    span_restore_us: MetricHandle,
    span_warm_us: MetricHandle,
    span_exec_us: MetricHandle,
    span_e2e_us: MetricHandle,
    /// Billed occupancy integral split by execution mode (indexed by
    /// [`ExecMode::index`]); the slices sum exactly to `billed_mb_us`.
    billed_mb_us_mode: [MetricHandle; 5],
}

impl AzMetricHandles {
    fn register(metrics: &mut MetricsRegistry, az: &str) -> Self {
        let l = |status: &'static str| [("az", az), ("status", status)];
        AzMetricHandles {
            success: metrics.counter("faas", "requests", &l("success")),
            declined: metrics.counter("faas", "requests", &l("declined")),
            throttled: metrics.counter("faas", "requests", &l("throttled")),
            no_capacity: metrics.counter("faas", "requests", &l("no-capacity")),
            attempts: metrics.counter("faas", "attempts", &[("az", az)]),
            cold_starts: metrics.counter("faas", "cold_starts", &[("az", az)]),
            warm_starts: metrics.counter("faas", "warm_starts", &[("az", az)]),
            gated_retries: metrics.counter("faas", "gated_retries", &[("az", az)]),
            keepalive_evictions: metrics.counter("faas", "keepalive_evictions", &[("az", az)]),
            hosts_recycled: metrics.counter("faas", "hosts_recycled", &[("az", az)]),
            hosts_added: metrics.counter("faas", "hosts_added", &[("az", az)]),
            billed_mb_us: metrics.counter("faas", "billed_mb_us", &[("az", az)]),
            cost_nanousd: metrics.counter("faas", "cost_nanousd", &[("az", az)]),
            restored_starts: metrics.counter("faas", "restored_starts", &[("az", az)]),
            branched_starts: metrics.counter("faas", "branched_starts", &[("az", az)]),
            pooled_starts: metrics.counter("faas", "pooled_starts", &[("az", az)]),
            pool_provisioned: metrics.counter("faas", "pool_provisioned", &[("az", az)]),
            pool_trimmed: metrics.counter("faas", "pool_trimmed", &[("az", az)]),
            pool_occupancy: metrics.gauge("faas", "pool_occupancy", &[("az", az)]),
            ephemeral_retires: metrics.counter("faas", "ephemeral_retires", &[("az", az)]),
            snapshots_captured: metrics.counter("faas", "snapshots_captured", &[("az", az)]),
            snapshots_evicted: metrics.counter("faas", "snapshots_evicted", &[("az", az)]),
            result_cache_hits: metrics.counter("faas", "result_cache_hits", &[("az", az)]),
            result_cache_misses: metrics.counter("faas", "result_cache_misses", &[("az", az)]),
            dispatch_cold_us: metrics.histogram("faas", "dispatch_cold_us", &[("az", az)]),
            dispatch_restore_us: metrics.histogram("faas", "dispatch_restore_us", &[("az", az)]),
            dispatch_warm_us: metrics.histogram("faas", "dispatch_warm_us", &[("az", az)]),
            span_route_us: metrics.histogram("span", "route_us", &[("az", az)]),
            span_cold_us: metrics.histogram("span", "cold_start_us", &[("az", az)]),
            span_restore_us: metrics.histogram("span", "restore_start_us", &[("az", az)]),
            span_warm_us: metrics.histogram("span", "warm_start_us", &[("az", az)]),
            span_exec_us: metrics.histogram("span", "execute_us", &[("az", az)]),
            span_e2e_us: metrics.histogram("span", "e2e_us", &[("az", az)]),
            billed_mb_us_mode: ExecMode::ALL.map(|m| {
                metrics.counter(
                    "faas",
                    "billed_mb_us_mode",
                    &[("az", az), ("mode", m.label())],
                )
            }),
        }
    }
}

/// Round a dollar amount to integer nano-dollars — the only place an
/// f64 cost meets the metrics layer, so shard sums are order-free.
#[inline]
pub(crate) fn nano_usd(cost: f64) -> u64 {
    (cost * 1e9).round() as u64
}

/// A batch request flattened for the dispatch loop: the deployment
/// record is resolved once per batch (not once per attempt) and the
/// body is `Copy`, so arrivals and retries allocate nothing.
#[derive(Clone, Copy)]
struct CompiledRequest {
    deployment: DeploymentId,
    account: u32,
    az_idx: u32,
    memory_mb: u32,
    arch: Arch,
    provider: Provider,
    body: RequestBody,
    /// Execution mode of the deployment (resolved once per batch; keys
    /// the per-mode billing slice).
    mode: ExecMode,
    /// Idempotent result-cache TTL (zero = caching disabled).
    cache_ttl: SimDuration,
}

/// Result-cache key: a `Workload` request is idempotent in exactly its
/// deployment and workload spec (kind, scale, payload identity).
type ResultCacheKey = (u64, u64, u32, u32, u64);

fn result_cache_key(dep: DeploymentId, spec: &WorkloadSpec) -> ResultCacheKey {
    (
        dep.raw(),
        spec.kind as u64,
        spec.scale,
        spec.payload_bytes,
        spec.payload_hash,
    )
}

/// Hot per-request state for the batch in flight, kept as one contiguous
/// arena (indexed by request position) rather than nine parallel `Vec`s:
/// an arrival or response touches one cache line of its own record.
struct RequestState {
    req: CompiledRequest,
    outcome: Option<InvocationOutcome>,
    first_arrival: Option<SimTime>,
    attempts: u32,
    retry_billed: SimDuration,
    retry_cost: f64,
    /// Final-attempt span components, overwritten per attempt: dispatch
    /// latency, client-visible execute time, and the start class that
    /// picks the span's start phase.
    span_dispatch: SimDuration,
    span_exec: SimDuration,
    span_class: StartClass,
}

impl RequestState {
    fn new(req: CompiledRequest) -> Self {
        RequestState {
            req,
            outcome: None,
            first_arrival: None,
            attempts: 0,
            retry_billed: SimDuration::ZERO,
            retry_cost: 0.0,
            span_dispatch: SimDuration::ZERO,
            span_exec: SimDuration::ZERO,
            span_class: StartClass::Warm,
        }
    }
}

/// The multi-AZ fleet engine.
pub struct FaasEngine {
    catalog: Catalog,
    config: FleetConfig,
    now: SimTime,
    queue: EventQueue<Event>,
    /// Platforms in instantiation order; events index into this vector.
    platforms: Vec<AzPlatform>,
    /// Zone name of each platform, parallel to `platforms`.
    az_ids: Vec<AzId>,
    /// Interning map from zone name to dense platform index.
    az_index: BTreeMap<AzId, u32>,
    accounts: Vec<Account>,
    deployments: Vec<Deployment>,
    exec_rng: SimRng,
    tracer: Tracer,
    events_processed: u64,
    metrics: MetricsRegistry,
    spans: SpanTracker,
    /// Per-AZ metric handles, parallel to `platforms`.
    az_metrics: Vec<AzMetricHandles>,
    /// Per-batch request arena (valid during run_batch only).
    batch: Vec<RequestState>,
    batch_pending: usize,
    /// In-flight `Event::Response` payloads, slab-allocated so queue
    /// entries stay small. Slots recycle within a batch (steady-state
    /// zero allocation) and the slab is asserted empty at batch teardown.
    response_payloads: Slab<InvocationStatus>,
    /// Idempotent result cache: successful `Workload` reports keyed by
    /// [`result_cache_key`], replayed while unexpired. Expired entries
    /// are overwritten by the next successful completion of their key,
    /// so the map is bounded by the distinct request shapes in play.
    result_cache: BTreeMap<ResultCacheKey, (SimTime, SaafReport)>,
    /// Observation hook for the streaming characterizer: while enabled,
    /// every successful completion's SAAF report is also buffered on its
    /// platform (drained via [`FaasEngine::take_observations`]). Off by
    /// default — the hook reads terminal state only, so enabling it can
    /// never perturb event order or RNG streams.
    observe_completions: bool,
}

impl std::fmt::Debug for FaasEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaasEngine")
            .field("now", &self.now)
            .field("platforms", &self.platforms.len())
            .field("accounts", &self.accounts.len())
            .field("deployments", &self.deployments.len())
            .finish()
    }
}

impl FaasEngine {
    /// Create an engine over a world catalog.
    pub fn new(catalog: Catalog, config: FleetConfig) -> Self {
        let root = SimRng::seed_from(config.seed).derive("faas-engine");
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::start_of_day(1), Event::DayTick { day: 1 });
        FaasEngine {
            catalog,
            config,
            now: SimTime::ZERO,
            queue,
            platforms: Vec::new(),
            az_ids: Vec::new(),
            az_index: BTreeMap::new(),
            accounts: Vec::new(),
            deployments: Vec::new(),
            exec_rng: root.derive("exec"),
            tracer: Tracer::new(TraceLevel::Info, 4096),
            events_processed: 0,
            metrics: MetricsRegistry::new(),
            spans: SpanTracker::new(),
            az_metrics: Vec::new(),
            batch: Vec::new(),
            batch_pending: 0,
            response_payloads: Slab::new(),
            result_cache: BTreeMap::new(),
            observe_completions: false,
        }
    }

    /// Enable or disable the completion observation hook. While enabled,
    /// every successful invocation's SAAF report is buffered per zone
    /// for [`take_observations`](Self::take_observations) — the feedback
    /// path of the streaming characterizer.
    pub fn set_observation_hook(&mut self, enabled: bool) {
        self.observe_completions = enabled;
    }

    /// Whether the completion observation hook is enabled.
    pub fn observation_hook(&self) -> bool {
        self.observe_completions
    }

    /// Drain the buffered completion reports for a zone, in completion
    /// order. Empty unless the observation hook is enabled.
    pub fn take_observations(&mut self, az: &AzId) -> Vec<SaafReport> {
        match self.az_index.get(az) {
            Some(&idx) => self.platforms[idx as usize].take_observations(),
            None => Vec::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The world catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The engine's trace buffer (lifecycle events for debugging/tests).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Total discrete events processed since construction (arrivals,
    /// responses, releases, expiries, maintenance). Used by throughput
    /// benchmarks to report events/second.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The engine's live metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable registry access (for harness-level annotations).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Span lifecycle accounting (opened/closed totals, open count).
    pub fn spans(&self) -> &SpanTracker {
        &self.spans
    }

    /// Export the engine's metrics as a normalized, mergeable snapshot,
    /// including a synthetic `faas/events_processed` counter.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let mut extra = MetricsRegistry::new();
        let events = extra.counter("faas", "events_processed", &[]);
        extra.add(events, self.events_processed);
        let spans_opened = extra.counter("span", "opened", &[]);
        extra.add(spans_opened, self.spans.opened_total());
        let spans_closed = extra.counter("span", "closed", &[]);
        extra.add(spans_closed, self.spans.closed_total());
        snap.merge(&extra.snapshot());
        snap
    }

    /// Create an account with the provider's default concurrency quota.
    pub fn create_account(&mut self, provider: Provider) -> AccountId {
        let id = AccountId::from_raw(self.accounts.len() as u64);
        self.accounts.push(Account {
            provider,
            quota: provider.default_concurrency_quota(),
            in_flight: 0,
        });
        id
    }

    /// Deploy a function.
    ///
    /// # Errors
    ///
    /// See [`DeployError`] for each validation failure.
    pub fn deploy(
        &mut self,
        account: AccountId,
        az: &AzId,
        memory_mb: u32,
        arch: Arch,
    ) -> Result<DeploymentId, DeployError> {
        let acct = self
            .accounts
            .get(account.raw() as usize)
            .ok_or(DeployError::UnknownAccount(account))?;
        let spec = self
            .catalog
            .az(az)
            .ok_or_else(|| DeployError::UnknownAz(az.clone()))?;
        let provider = spec.provider;
        if acct.provider != provider {
            return Err(DeployError::ProviderMismatch {
                account: acct.provider,
                az: provider,
            });
        }
        if !provider.supports_memory_mb(memory_mb) {
            return Err(DeployError::UnsupportedMemory {
                provider,
                memory_mb,
            });
        }
        if !provider.arch_options().contains(&arch) {
            return Err(DeployError::UnsupportedArch { provider, arch });
        }
        let id = DeploymentId::from_raw(self.deployments.len() as u64);
        self.deployments.push(Deployment {
            id,
            account,
            az: az.clone(),
            provider,
            memory_mb,
            arch,
        });
        let az_idx = self.ensure_platform(az);
        // Only a non-default fleet-wide profile registers anything: the
        // legacy path never touches the mode machinery, keeping
        // pre-existing runs byte-identical.
        if self.config.exec_profile != ExecProfile::default() {
            self.apply_profile(id, az_idx, self.config.exec_profile);
        }
        Ok(id)
    }

    /// Override one deployment's execution profile (mode, pre-warm pool,
    /// snapshot TTL, result-cache TTL), provisioning any fixed pool
    /// immediately and arming the platform's pool tick if needed.
    ///
    /// # Panics
    ///
    /// Panics if the deployment id is unknown.
    pub fn set_exec_profile(&mut self, dep: DeploymentId, profile: ExecProfile) {
        let az = self.deployments[dep.raw() as usize].az.clone();
        let az_idx = self.az_index[&az];
        self.apply_profile(dep, az_idx, profile);
    }

    fn apply_profile(&mut self, dep: DeploymentId, az_idx: u32, profile: ExecProfile) {
        let d = &self.deployments[dep.raw() as usize];
        let (memory_mb, arch) = (d.memory_mb, d.arch);
        let now = self.now;
        let provisioned =
            self.platforms[az_idx as usize].set_profile(dep, profile, memory_mb, arch, now);
        if provisioned > 0 {
            self.metrics.add(
                self.az_metrics[az_idx as usize].pool_provisioned,
                provisioned as u64,
            );
        }
        let platform = &mut self.platforms[az_idx as usize];
        if profile.pool.enabled() && !platform.pool_tick_scheduled {
            platform.pool_tick_scheduled = true;
            self.queue.schedule(
                now + self.config.pool_tick_interval,
                Event::PoolTick { az_idx },
            );
        }
    }

    /// Look up a deployment record.
    pub fn deployment(&self, id: DeploymentId) -> Option<&Deployment> {
        self.deployments.get(id.raw() as usize)
    }

    /// Experiment-harness access to a platform (e.g. for ground-truth
    /// mixes when computing APE). The profiler/router must not use this.
    pub fn platform(&self, az: &AzId) -> Option<&AzPlatform> {
        self.az_index.get(az).map(|&i| &self.platforms[i as usize])
    }

    /// Fault injection: all new FI placement in `az` fails for the given
    /// duration (warm instances keep serving). The zone must already be
    /// instantiated (have at least one deployment).
    ///
    /// # Panics
    ///
    /// Panics if no platform exists for `az` yet.
    pub fn inject_outage(&mut self, az: &AzId, duration: SimDuration) {
        let until = self.now + duration;
        let idx = *self
            .az_index
            .get(az)
            .unwrap_or_else(|| panic!("no platform instantiated for {az}"));
        self.platforms[idx as usize].inject_outage(until);
        self.tracer.warn(
            self.now,
            "faas.fault",
            format!("{az}: outage injected until {until}"),
        );
    }

    /// Arm a fault schedule: each plan event is enqueued once at its
    /// start time and arms its platform until `start + duration` when it
    /// fires. Platforms for targeted zones are instantiated on demand, so
    /// a plan may be armed before any deployment exists in a zone.
    ///
    /// Fault windows never perturb unrelated randomness: fault coin flips
    /// draw from a dedicated per-platform stream, so a run whose windows
    /// are never reached is byte-identical to a run with no plan at all.
    ///
    /// # Panics
    ///
    /// Panics if an event targets a zone missing from the catalog or
    /// starts before the current virtual time.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        for ev in plan.events() {
            assert!(
                self.catalog.az(&ev.az).is_some(),
                "fault plan targets unknown zone {}",
                ev.az
            );
            assert!(
                ev.start >= self.now,
                "fault at {} is in the past (now {})",
                ev.start,
                self.now
            );
            let az_idx = self.ensure_platform(&ev.az);
            self.queue.schedule(
                ev.start,
                Event::Fault {
                    az_idx,
                    kind: ev.kind,
                    until: ev.end(),
                },
            );
        }
    }

    /// Intern `az`, instantiating its platform on first sight, and
    /// return the dense platform index.
    fn ensure_platform(&mut self, az: &AzId) -> u32 {
        if let Some(&idx) = self.az_index.get(az) {
            return idx;
        }
        let spec = self.catalog.az(az).expect("validated by deploy").clone();
        let idx = self.platforms.len() as u32;
        let base = (idx as u64 + 1) << 40;
        let rng = SimRng::seed_from(self.config.seed)
            .derive("platform")
            .derive(&az.to_string());
        self.platforms.push(AzPlatform::new(
            spec,
            base,
            rng,
            self.config.warm_reuse_prob,
        ));
        self.az_metrics.push(AzMetricHandles::register(
            &mut self.metrics,
            &az.to_string(),
        ));
        self.az_ids.push(az.clone());
        self.az_index.insert(az.clone(), idx);
        idx
    }

    /// Advance virtual time to `t`, processing maintenance events
    /// (keep-alive expiries, day churn, scale checks) along the way.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot advance into the past");
        while let Some(at) = self.queue.peek_time() {
            if at > t {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked");
            self.now = at;
            self.events_processed += 1;
            self.handle_maintenance(event);
        }
        self.now = t;
    }

    /// Advance virtual time by `d`.
    pub fn advance_by(&mut self, d: SimDuration) {
        self.advance_to(self.now + d);
    }

    /// Execute a batch of invocations. Arrival times are `now + offset`;
    /// the call returns once every request has a terminal outcome, with
    /// the engine clock left at the last processed event.
    ///
    /// Outcomes are returned in request order.
    pub fn run_batch(&mut self, requests: Vec<BatchRequest>) -> Vec<InvocationOutcome> {
        if requests.is_empty() {
            return Vec::new();
        }
        let start = self.now;
        let n = requests.len();
        self.batch_pending = n;
        // Resolve each request's deployment once up front; every attempt
        // (including gated retries) then works from the flat record.
        self.batch = requests
            .iter()
            .map(|req| {
                let dep = match self.deployments.get(req.deployment.raw() as usize) {
                    Some(d) => d,
                    None => panic!("invocation of unknown deployment {}", req.deployment),
                };
                let az_idx = self.az_index[&dep.az];
                let profile = self.platforms[az_idx as usize].profile(dep.id);
                RequestState::new(CompiledRequest {
                    deployment: dep.id,
                    account: dep.account.raw() as u32,
                    az_idx,
                    memory_mb: dep.memory_mb,
                    arch: dep.arch,
                    provider: dep.provider,
                    body: req.body,
                    mode: profile.mode,
                    cache_ttl: profile.result_cache_ttl,
                })
            })
            .collect();
        for (idx, req) in requests.iter().enumerate() {
            self.queue
                .schedule(start + req.offset, Event::Arrival { idx });
        }
        while self.batch_pending > 0 {
            let (at, event) = self
                .queue
                .pop()
                .expect("pending outcomes imply pending events");
            self.now = at;
            self.events_processed += 1;
            self.handle(event);
        }
        // Teardown contract: every submitted request closed its span and
        // consumed its response payload.
        assert_eq!(
            self.spans.open_count(),
            0,
            "span(s) survived batch teardown"
        );
        debug_assert!(
            self.response_payloads.is_empty(),
            "response payload(s) survived batch teardown"
        );
        std::mem::take(&mut self.batch)
            .into_iter()
            .map(|s| s.outcome.expect("all outcomes resolved"))
            .collect()
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Arrival { idx } => self.handle_arrival(idx),
            Event::Response {
                idx,
                status,
                billed,
                cost,
            } => {
                let status = self.response_payloads.remove(status);
                self.handle_response(idx, status, billed, cost)
            }
            other => self.handle_maintenance(other),
        }
    }

    fn handle_maintenance(&mut self, event: Event) {
        match event {
            Event::Release {
                az_idx,
                instance,
                slot,
            } => {
                let mode = self.platforms[az_idx as usize]
                    .instance_at(slot)
                    .expect("released FI is live")
                    .mode;
                match mode {
                    ExecMode::Ephemeral => {
                        // Torn down right out of execution: no idle
                        // period, no keep-alive draw, no expire event.
                        self.platforms[az_idx as usize].retire(instance, slot, self.now);
                        self.metrics
                            .add(self.az_metrics[az_idx as usize].ephemeral_retires, 1);
                    }
                    ExecMode::Persistent => {
                        // Never reclaimed: park warm with an effectively
                        // infinite keep-alive and schedule no expiry.
                        // (Storms shorten keep-alives, not dedicated
                        // environments.)
                        let forever = SimDuration::from_secs(10 * 365 * 24 * 3600);
                        let _ = self.platforms[az_idx as usize]
                            .release(instance, slot, self.now, forever);
                    }
                    ExecMode::Cached | ExecMode::Checkpointed | ExecMode::Branched => {
                        // A cold-start storm suppresses keep-alive: the FI
                        // is torn down right after its invocation, so the
                        // next request pays a (storm-inflated) cold start.
                        let keep_alive =
                            if self.platforms[az_idx as usize].cold_storm_active(self.now) {
                                SimDuration::ZERO
                            } else {
                                let lo = self.config.keep_alive_min.as_micros();
                                let hi = self.config.keep_alive_max.as_micros();
                                SimDuration::from_micros(self.exec_rng.range_inclusive(lo, hi))
                            };
                        let platform = &mut self.platforms[az_idx as usize];
                        let (deadline, epoch) =
                            platform.release(instance, slot, self.now, keep_alive);
                        self.queue.schedule(
                            deadline,
                            Event::Expire {
                                az_idx,
                                instance,
                                slot,
                                epoch,
                            },
                        );
                    }
                }
                self.meter_snapshot_deltas(az_idx);
            }
            Event::Expire {
                az_idx,
                instance,
                slot,
                epoch,
            } => {
                if self.platforms[az_idx as usize].expire(instance, slot, epoch, self.now) {
                    self.metrics
                        .add(self.az_metrics[az_idx as usize].keepalive_evictions, 1);
                }
            }
            Event::DayTick { day } => {
                // Dense iteration in instantiation order — deterministic,
                // unlike the HashMap walk this replaces.
                for (idx, p) in self.platforms.iter_mut().enumerate() {
                    let recycled = p.day_tick();
                    self.metrics
                        .add(self.az_metrics[idx].hosts_recycled, recycled as u64);
                    self.tracer.info(
                        self.now,
                        "faas.churn",
                        format!("{}: day {day} recycled {recycled} hosts", self.az_ids[idx]),
                    );
                }
                self.queue.schedule(
                    SimTime::start_of_day(day + 1),
                    Event::DayTick { day: day + 1 },
                );
            }
            Event::ScaleCheck { az_idx } => {
                let p = &mut self.platforms[az_idx as usize];
                p.scale_check_scheduled = false;
                let added = p.scale_step();
                if added > 0 {
                    self.metrics
                        .add(self.az_metrics[az_idx as usize].hosts_added, added as u64);
                    self.tracer.info(
                        self.now,
                        "faas.scale",
                        format!("{}: added {added} hosts", self.az_ids[az_idx as usize]),
                    );
                }
            }
            Event::PoolTick { az_idx } => {
                let stats = self.platforms[az_idx as usize].pool_tick(self.now);
                let handles = self.az_metrics[az_idx as usize];
                self.metrics
                    .add(handles.pool_provisioned, stats.provisioned as u64);
                self.metrics.add(handles.pool_trimmed, stats.trimmed as u64);
                self.metrics
                    .set_gauge(handles.pool_occupancy, self.now, stats.occupancy as f64);
                let p = &mut self.platforms[az_idx as usize];
                if p.has_pools() {
                    self.queue.schedule(
                        self.now + self.config.pool_tick_interval,
                        Event::PoolTick { az_idx },
                    );
                } else {
                    p.pool_tick_scheduled = false;
                }
            }
            Event::Fault {
                az_idx,
                kind,
                until,
            } => {
                let purged = self.platforms[az_idx as usize].apply_fault(&kind, until);
                // Cold path: fault arming is rare, so the string-keyed
                // slow lane is fine here and keeps per-kind labels off
                // the per-AZ handle table.
                let az = self.az_ids[az_idx as usize].to_string();
                let window = until.saturating_since(self.now);
                let labels = [("az", az.as_str()), ("kind", kind.label())];
                self.metrics.incr("faas", "faults_armed", &labels, 1);
                self.metrics
                    .incr("faas", "fault_window_us", &labels, window.as_micros());
                self.metrics
                    .incr("faas", "fault_purged_fis", &labels, purged as u64);
                let until_gauge = self.metrics.gauge("faas", "fault_until_us", &labels);
                self.metrics
                    .set_gauge(until_gauge, self.now, until.as_micros() as f64);
                self.tracer.warn(
                    self.now,
                    "faas.fault",
                    format!(
                        "{}: {} armed until {until} (purged {purged} warm FIs)",
                        self.az_ids[az_idx as usize],
                        kind.label(),
                    ),
                );
            }
            Event::Arrival { .. } | Event::Response { .. } => {
                unreachable!("batch events are not maintenance")
            }
        }
    }

    /// Meter snapshot captures/evictions accumulated on a platform since
    /// the last drain (acquire can lazily evict; release/retire can
    /// capture).
    fn meter_snapshot_deltas(&mut self, az_idx: u32) {
        let (captured, evicted) = self.platforms[az_idx as usize].take_snapshot_deltas();
        if captured > 0 {
            self.metrics.add(
                self.az_metrics[az_idx as usize].snapshots_captured,
                captured,
            );
        }
        if evicted > 0 {
            self.metrics
                .add(self.az_metrics[az_idx as usize].snapshots_evicted, evicted);
        }
    }

    fn resolve(&mut self, idx: usize, outcome: InvocationOutcome) {
        debug_assert!(self.batch[idx].outcome.is_none(), "double resolution");
        self.batch[idx].outcome = Some(outcome);
        self.batch_pending -= 1;
    }

    /// Terminal outcome assembly: folds in the retry accumulators,
    /// closes the request's span (phase durations must sum exactly to
    /// the end-to-end latency) and meters the terminal counters.
    fn resolve_final(
        &mut self,
        idx: usize,
        finished: SimTime,
        status: InvocationStatus,
        billed: SimDuration,
        cost: f64,
    ) {
        let state = &self.batch[idx];
        let arrived = state.first_arrival.unwrap_or(finished);
        let az_idx = state.req.az_idx as usize;
        let handles = self.az_metrics[az_idx];

        // Span accounting: e2e partitions exactly into route (queueing,
        // gated-retry waits) + final-attempt dispatch + execute.
        let dispatch = state.span_dispatch;
        let exec = state.span_exec;
        let class = state.span_class;
        let mode = state.req.mode;
        let memory_mb = state.req.memory_mb;
        let retry_billed = state.retry_billed;
        let retry_cost = state.retry_cost;
        let attempts = state.attempts;
        let e2e = finished.saturating_since(arrived);
        let route =
            SimDuration::from_micros(e2e.as_micros() - dispatch.as_micros() - exec.as_micros());
        let start_phase = match class {
            StartClass::Cold => SpanPhase::ColdStart,
            StartClass::Restored | StartClass::Branched => SpanPhase::Restore,
            StartClass::Pooled | StartClass::Warm => SpanPhase::WarmStart,
        };
        self.spans.close(
            idx as u64,
            finished,
            &[
                (SpanPhase::Route, route),
                (start_phase, dispatch),
                (SpanPhase::Execute, exec),
            ],
        );
        self.metrics.observe_duration(handles.span_route_us, route);
        let start_hist = match class {
            StartClass::Cold => handles.span_cold_us,
            StartClass::Restored | StartClass::Branched => handles.span_restore_us,
            StartClass::Pooled | StartClass::Warm => handles.span_warm_us,
        };
        self.metrics.observe_duration(start_hist, dispatch);
        self.metrics.observe_duration(handles.span_exec_us, exec);
        self.metrics.observe_duration(handles.span_e2e_us, e2e);

        let status_counter = match &status {
            InvocationStatus::Success(_) => handles.success,
            InvocationStatus::Declined(_) => handles.declined,
            InvocationStatus::Throttled => handles.throttled,
            InvocationStatus::NoCapacity => handles.no_capacity,
        };
        self.metrics.add(status_counter, 1);
        let total_billed = billed + retry_billed;
        let billed_mb_us = total_billed.as_micros() * memory_mb as u64;
        self.metrics.add(handles.billed_mb_us, billed_mb_us);
        // Per-mode billing slice: a request bills against exactly one
        // mode (its deployment's), so the slices partition the total.
        self.metrics
            .add(handles.billed_mb_us_mode[mode.index()], billed_mb_us);
        self.metrics
            .add(handles.cost_nanousd, nano_usd(cost) + nano_usd(retry_cost));

        if self.observe_completions {
            if let InvocationStatus::Success(report) = &status {
                self.platforms[az_idx].push_observation(report.clone());
            }
        }

        let outcome = InvocationOutcome {
            index: idx,
            arrived,
            finished,
            status,
            billed,
            cost_usd: cost,
            attempts: attempts.max(1),
            retry_billed,
            retry_cost_usd: retry_cost,
        };
        self.resolve(idx, outcome);
    }

    /// Zero the span components for an attempt that was shed before any
    /// dispatch work (throttle, no-capacity): its end-to-end time is
    /// pure routing.
    fn shed_span_state(&mut self, idx: usize) {
        let state = &mut self.batch[idx];
        state.span_dispatch = SimDuration::ZERO;
        state.span_exec = SimDuration::ZERO;
        state.span_class = StartClass::Warm;
    }

    fn handle_arrival(&mut self, idx: usize) {
        let req = self.batch[idx].req;
        let arrived = self.now;
        if self.batch[idx].first_arrival.is_none() {
            self.batch[idx].first_arrival = Some(arrived);
            self.spans.open(idx as u64, arrived);
        }
        self.batch[idx].attempts += 1;
        self.metrics
            .add(self.az_metrics[req.az_idx as usize].attempts, 1);
        // Idempotent result cache: an unexpired cached report for this
        // exact workload is replayed at the edge — no quota, no
        // placement, no billing. (Expired entries are left for the next
        // completion to overwrite.)
        if req.cache_ttl > SimDuration::ZERO {
            if let RequestBody::Workload { spec } = req.body {
                let key = result_cache_key(req.deployment, &spec);
                let hit = match self.result_cache.get(&key) {
                    Some((expires, report)) if arrived < *expires => Some(report.clone()),
                    _ => None,
                };
                let handles = self.az_metrics[req.az_idx as usize];
                if let Some(mut report) = hit {
                    // A replay starts no container, whatever the
                    // original run did.
                    report.new_container = false;
                    self.metrics.add(handles.result_cache_hits, 1);
                    self.shed_span_state(idx);
                    self.resolve_final(
                        idx,
                        arrived,
                        InvocationStatus::Success(report),
                        SimDuration::ZERO,
                        0.0,
                    );
                    return;
                }
                self.metrics.add(handles.result_cache_misses, 1);
            }
        }
        // Concurrency quota.
        let acct = &mut self.accounts[req.account as usize];
        if acct.in_flight >= acct.quota {
            self.shed_span_state(idx);
            self.resolve_final(
                idx,
                arrived,
                InvocationStatus::Throttled,
                SimDuration::ZERO,
                0.0,
            );
            return;
        }
        // Throttling storm: 429-style shed before any placement work, so
        // a shed arrival consumes no capacity and holds no quota.
        let platform = &mut self.platforms[req.az_idx as usize];
        if platform.throttle_rejects(arrived) {
            self.shed_span_state(idx);
            self.resolve_final(
                idx,
                arrived,
                InvocationStatus::Throttled,
                SimDuration::ZERO,
                0.0,
            );
            return;
        }
        // Placement.
        let (instance_id, inst_slot, class) =
            match platform.acquire(req.deployment, req.memory_mb, req.arch, arrived) {
                Ok(x) => x,
                Err(CapacityError::Exhausted) => {
                    if !platform.scale_check_scheduled {
                        platform.scale_check_scheduled = true;
                        self.queue.schedule(
                            arrived + self.config.scale_interval,
                            Event::ScaleCheck { az_idx: req.az_idx },
                        );
                    }
                    self.shed_span_state(idx);
                    self.resolve_final(
                        idx,
                        arrived,
                        InvocationStatus::NoCapacity,
                        SimDuration::ZERO,
                        0.0,
                    );
                    return;
                }
            };
        self.accounts[req.account as usize].in_flight += 1;
        // Acquire may have lazily evicted an expired snapshot.
        self.meter_snapshot_deltas(req.az_idx);

        // Dispatch latency (not billed). Cold-start storms inflate init
        // (and snapshot restores — image read-back contends on the same
        // substrate); latency spikes add a flat (unbilled) delay to every
        // dispatch. Restore and branch latencies are deterministic: no
        // RNG draw, so pooled/restored traffic never perturbs the
        // exec stream consumed by legacy deployments.
        let platform = &self.platforms[req.az_idx as usize];
        let dispatch = match class {
            StartClass::Cold => {
                let lo = self.config.cold_start_min.as_micros();
                let hi = self.config.cold_start_max.as_micros();
                SimDuration::from_micros(self.exec_rng.range_inclusive(lo, hi))
                    .mul_f64(platform.cold_start_factor(arrived))
            }
            StartClass::Restored => self
                .config
                .restore_latency
                .mul_f64(platform.cold_start_factor(arrived)),
            StartClass::Branched => self.config.branch_latency,
            StartClass::Pooled | StartClass::Warm => self.config.warm_dispatch,
        } + platform.extra_dispatch_latency(arrived);
        {
            let handles = self.az_metrics[req.az_idx as usize];
            let (starts, hist) = match class {
                StartClass::Cold => (handles.cold_starts, handles.dispatch_cold_us),
                StartClass::Restored => (handles.restored_starts, handles.dispatch_restore_us),
                StartClass::Branched => (handles.branched_starts, handles.dispatch_restore_us),
                StartClass::Pooled => (handles.pooled_starts, handles.dispatch_warm_us),
                StartClass::Warm => (handles.warm_starts, handles.dispatch_warm_us),
            };
            self.metrics.add(starts, 1);
            self.metrics.observe_duration(hist, dispatch);
        }

        // Execution semantics. Gray degradation silently stretches
        // *workload* execution (sleeps are timer-bound and unaffected).
        let hour = arrived.hour_of_day_f64();
        let contention = platform.diurnal().contention(hour);
        let gray = platform.gray_slowdown(arrived);
        let inst = platform.instance_at(inst_slot).expect("just acquired");
        let cpu = inst.cpu;
        // `billed` is the full FI occupancy (including decline holds);
        // `response_after` is when the client hears back, measured from
        // the end of dispatch.
        let (billed, response_after, declined) = match req.body {
            RequestBody::Sleep { duration } => {
                let b = duration + self.config.sleep_overhead;
                (b, b, false)
            }
            RequestBody::Workload { spec } => {
                let decode = self.decode_overhead(
                    req.az_idx,
                    inst_slot,
                    spec.payload_hash,
                    spec.payload_bytes,
                );
                let exec = self
                    .config
                    .perf
                    .duration(
                        spec.kind,
                        spec.scale,
                        cpu,
                        req.memory_mb,
                        contention,
                        &mut self.exec_rng,
                    )
                    .mul_f64(gray);
                let b = decode + exec;
                (b, b, false)
            }
            RequestBody::GatedWorkload {
                spec, banned, hold, ..
            } => {
                if banned.contains(cpu) {
                    // Respond right after the check; hold the FI busy for
                    // `hold` so the reissue cannot land back here.
                    (self.config.gate_check + hold, self.config.gate_check, true)
                } else {
                    let decode = self.decode_overhead(
                        req.az_idx,
                        inst_slot,
                        spec.payload_hash,
                        spec.payload_bytes,
                    );
                    let exec = self
                        .config
                        .perf
                        .duration(
                            spec.kind,
                            spec.scale,
                            cpu,
                            req.memory_mb,
                            contention,
                            &mut self.exec_rng,
                        )
                        .mul_f64(gray);
                    let b = self.config.gate_check + decode + exec;
                    (b, b, false)
                }
            }
        };
        // The attempt that resolves the request defines its span's
        // start/execute components; earlier attempts' time lands in the
        // route phase (finished − first arrival − dispatch − execute).
        {
            let state = &mut self.batch[idx];
            state.span_dispatch = dispatch;
            state.span_exec = response_after;
            state.span_class = class;
        }
        let response_at = arrived + dispatch + response_after;
        let release_at = arrived + dispatch + billed;
        let cost = PriceBook::invocation_cost(req.provider, req.arch, req.memory_mb, billed);

        let inst = self.platforms[req.az_idx as usize]
            .instance_at(inst_slot)
            .expect("just acquired");
        let report = SaafReport {
            cpu_model: cpu.model_name().into(),
            cpu_ghz: cpu.clock_ghz(),
            instance_uuid: std::sync::Arc::clone(&inst.uuid),
            host_id: inst.host_id,
            instance_id,
            new_container: class.new_container(),
            billed,
            memory_mb: req.memory_mb,
            arch: req.arch,
            provider: req.provider,
            az: self.az_ids[req.az_idx as usize].clone(),
            finished_at: response_at,
        };
        let status = if declined {
            InvocationStatus::Declined(report)
        } else {
            InvocationStatus::Success(report)
        };
        let status_key = self.response_payloads.insert(status);
        self.queue.schedule(
            response_at,
            Event::Response {
                idx,
                status: status_key,
                billed,
                cost,
            },
        );
        self.queue.schedule(
            release_at,
            Event::Release {
                az_idx: req.az_idx,
                instance: instance_id,
                slot: inst_slot,
            },
        );
    }

    fn handle_response(
        &mut self,
        idx: usize,
        status: InvocationStatus,
        billed: SimDuration,
        cost: f64,
    ) {
        let req = self.batch[idx].req;
        self.accounts[req.account as usize].in_flight -= 1;
        // Automatic reissue of declined gated requests.
        if let InvocationStatus::Declined(_) = &status {
            if let RequestBody::GatedWorkload {
                max_retries,
                retry_latency,
                ..
            } = req.body
            {
                let retries_so_far = self.batch[idx].attempts - 1;
                if retries_so_far < max_retries {
                    // sky-lint: allow(D005, retry_billed is SimDuration - integer microseconds - not float money)
                    self.batch[idx].retry_billed += billed;
                    // sky-lint: allow(D005, attempt-ordered f64 USD fold surfaced in the outcome report; metered billing stays integer nano-USD in metrics)
                    self.batch[idx].retry_cost += cost;
                    self.metrics
                        .add(self.az_metrics[req.az_idx as usize].gated_retries, 1);
                    self.queue
                        .schedule(self.now + retry_latency, Event::Arrival { idx });
                    return;
                }
            }
        }
        // Cache the successful report for idempotent replay. Only real
        // completions land here (cache hits resolve inside
        // handle_arrival), so a hit never refreshes its own TTL.
        if req.cache_ttl > SimDuration::ZERO {
            if let (InvocationStatus::Success(report), RequestBody::Workload { spec }) =
                (&status, req.body)
            {
                self.result_cache.insert(
                    result_cache_key(req.deployment, &spec),
                    (self.now + req.cache_ttl, report.clone()),
                );
            }
        }
        self.resolve_final(idx, self.now, status, billed, cost);
    }

    /// Dynamic-function payload decode cost: ~2 ms fixed plus linear in
    /// payload size (≤ 70 ms at the 5 MB cap), cached per FI by content
    /// hash so repeat requests skip it — the FaaSET behaviour §3.2.
    fn decode_overhead(
        &mut self,
        az_idx: u32,
        slot: SlotKey,
        payload_hash: u64,
        payload_bytes: u32,
    ) -> SimDuration {
        let platform = &mut self.platforms[az_idx as usize];
        let inst = platform.instance_at_mut(slot).expect("acquired");
        if inst.payload_cache.contains(payload_hash) {
            return SimDuration::ZERO;
        }
        inst.payload_cache.insert(payload_hash);
        let ms = 2.0 + payload_bytes as f64 / (5.0 * 1024.0 * 1024.0) * 68.0;
        SimDuration::from_millis_f64(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::PoolPolicy;
    use sky_workloads::WorkloadKind;

    fn engine(seed: u64) -> FaasEngine {
        FaasEngine::new(Catalog::paper_world(7), FleetConfig::new(seed))
    }

    fn az(s: &str) -> AzId {
        s.parse().unwrap()
    }

    #[test]
    fn deploy_validation() {
        let mut e = engine(1);
        let aws = e.create_account(Provider::Aws);
        let ibm = e.create_account(Provider::Ibm);
        assert!(e.deploy(aws, &az("us-west-1a"), 2048, Arch::X86_64).is_ok());
        assert!(matches!(
            e.deploy(aws, &az("mars-1a"), 2048, Arch::X86_64),
            Err(DeployError::UnknownAz(_))
        ));
        assert!(matches!(
            e.deploy(aws, &az("us-west-1a"), 64, Arch::X86_64),
            Err(DeployError::UnsupportedMemory { .. })
        ));
        assert!(matches!(
            e.deploy(ibm, &az("us-west-1a"), 2048, Arch::X86_64),
            Err(DeployError::ProviderMismatch { .. })
        ));
        assert!(matches!(
            e.deploy(ibm, &az("eu-de-a"), 2048, Arch::Arm64),
            Err(DeployError::UnsupportedArch { .. })
        ));
        // 100 distinct memory settings, as the sampling campaign uses.
        for i in 0..100 {
            assert!(e
                .deploy(aws, &az("us-west-1a"), 2038 + i, Arch::X86_64)
                .is_ok());
        }
    }

    #[test]
    fn sleep_batch_all_succeed_and_bill() {
        let mut e = engine(2);
        let acct = e.create_account(Provider::Aws);
        let dep = e
            .deploy(acct, &az("us-east-2a"), 2048, Arch::X86_64)
            .unwrap();
        let reqs: Vec<BatchRequest> = (0..50)
            .map(|i| BatchRequest {
                deployment: dep,
                offset: SimDuration::from_millis(i),
                body: RequestBody::Sleep {
                    duration: SimDuration::from_millis(250),
                },
            })
            .collect();
        let outcomes = e.run_batch(reqs);
        assert_eq!(outcomes.len(), 50);
        for o in &outcomes {
            assert!(o.status.is_success());
            assert_eq!(o.billed, SimDuration::from_millis(252));
            assert!(o.cost_usd > 0.0);
            let r = o.status.report().unwrap();
            assert!(r.new_container, "fresh deployment: all cold");
            assert_eq!(r.cpu_type(), Some(sky_cloud::CpuType::IntelXeon2_5));
        }
        // 50 concurrent sleeps => 50 unique FIs.
        let mut uuids: Vec<&str> = outcomes
            .iter()
            .map(|o| &*o.status.report().unwrap().instance_uuid)
            .collect();
        uuids.sort();
        uuids.dedup();
        assert_eq!(uuids.len(), 50);
    }

    #[test]
    fn sequential_requests_reuse_warm_instances() {
        let mut e = engine(3);
        let acct = e.create_account(Provider::Aws);
        let dep = e
            .deploy(acct, &az("us-east-2a"), 2048, Arch::X86_64)
            .unwrap();
        // Spread arrivals 1s apart: each sleeps 250ms, so all reuse one FI.
        let reqs: Vec<BatchRequest> = (0..10)
            .map(|i| BatchRequest {
                deployment: dep,
                offset: SimDuration::from_secs(i),
                body: RequestBody::Sleep {
                    duration: SimDuration::from_millis(250),
                },
            })
            .collect();
        let outcomes = e.run_batch(reqs);
        let unique: std::collections::BTreeSet<&str> = outcomes
            .iter()
            .map(|o| &*o.status.report().unwrap().instance_uuid)
            .collect();
        assert_eq!(unique.len(), 1, "all sequential requests share one warm FI");
        let colds = outcomes
            .iter()
            .filter(|o| o.status.report().unwrap().new_container)
            .count();
        assert_eq!(colds, 1);
    }

    #[test]
    fn concurrency_quota_throttles() {
        let mut e = engine(4);
        let acct = e.create_account(Provider::Aws);
        let dep = e
            .deploy(acct, &az("eu-central-1a"), 1024, Arch::X86_64)
            .unwrap();
        let reqs: Vec<BatchRequest> = (0..1100)
            .map(|_| BatchRequest {
                deployment: dep,
                offset: SimDuration::ZERO,
                body: RequestBody::Sleep {
                    duration: SimDuration::from_secs(2),
                },
            })
            .collect();
        let outcomes = e.run_batch(reqs);
        let throttled = outcomes
            .iter()
            .filter(|o| o.status == InvocationStatus::Throttled)
            .count();
        assert_eq!(throttled, 100, "quota is 1000 concurrent");
    }

    #[test]
    fn saturation_produces_no_capacity_errors_visible_to_other_accounts() {
        let mut e = engine(5);
        let a1 = e.create_account(Provider::Aws);
        let a2 = e.create_account(Provider::Aws);
        let zone = az("eu-north-1a"); // small pool
                                      // Account 1 saturates the AZ with big-memory sleeps.
        let mut failures1 = 0usize;
        for wave in 0..12 {
            let dep = e.deploy(a1, &zone, 10_140 + wave, Arch::X86_64).unwrap();
            let reqs: Vec<BatchRequest> = (0..800)
                .map(|_| BatchRequest {
                    deployment: dep,
                    offset: SimDuration::ZERO,
                    body: RequestBody::Sleep {
                        duration: SimDuration::from_millis(500),
                    },
                })
                .collect();
            failures1 += e
                .run_batch(reqs)
                .iter()
                .filter(|o| o.status == InvocationStatus::NoCapacity)
                .count();
        }
        assert!(
            failures1 > 0,
            "sustained polling should exhaust the small AZ"
        );
        // Account 2 immediately sees capacity errors too (shared pool).
        let dep2 = e.deploy(a2, &zone, 10_240, Arch::X86_64).unwrap();
        let reqs: Vec<BatchRequest> = (0..800)
            .map(|_| BatchRequest {
                deployment: dep2,
                offset: SimDuration::ZERO,
                body: RequestBody::Sleep {
                    duration: SimDuration::from_millis(500),
                },
            })
            .collect();
        let outcomes2 = e.run_batch(reqs);
        let failures2 = outcomes2
            .iter()
            .filter(|o| o.status == InvocationStatus::NoCapacity)
            .count();
        assert!(
            failures2 > 400,
            "cross-account saturation: independent account mostly fails ({failures2}/800)"
        );
    }

    #[test]
    fn gated_request_declines_on_banned_cpu() {
        let mut e = engine(6);
        let acct = e.create_account(Provider::Aws);
        // us-east-2a is homogeneous 2.5GHz: banning it declines everything.
        let dep = e
            .deploy(acct, &az("us-east-2a"), 2048, Arch::X86_64)
            .unwrap();
        let spec = WorkloadSpec::new(WorkloadKind::Zipper);
        let reqs: Vec<BatchRequest> = (0..20)
            .map(|_| BatchRequest {
                deployment: dep,
                offset: SimDuration::ZERO,
                body: RequestBody::GatedWorkload {
                    spec,
                    banned: sky_cloud::CpuSet::from_slice(&[sky_cloud::CpuType::IntelXeon2_5]),
                    hold: SimDuration::from_millis(150),
                    max_retries: 0,
                    retry_latency: SimDuration::from_millis(60),
                },
            })
            .collect();
        let outcomes = e.run_batch(reqs);
        for o in &outcomes {
            assert!(matches!(o.status, InvocationStatus::Declined(_)));
            assert_eq!(o.billed, SimDuration::from_millis(152));
        }
    }

    #[test]
    fn auto_retry_steers_batch_onto_fast_cpu() {
        let mut e = engine(77);
        let acct = e.create_account(Provider::Aws);
        // us-west-1b: diverse mix with ~40% 3.0GHz hosts.
        let dep = e
            .deploy(acct, &az("us-west-1b"), 2048, Arch::X86_64)
            .unwrap();
        let spec = WorkloadSpec::new(WorkloadKind::Zipper);
        let banned: sky_cloud::CpuSet = sky_cloud::CpuType::AWS_X86
            .iter()
            .copied()
            .filter(|&c| c != sky_cloud::CpuType::IntelXeon3_0)
            .collect();
        let reqs: Vec<BatchRequest> = (0..300)
            .map(|i| BatchRequest {
                deployment: dep,
                offset: SimDuration::from_millis(i % 40),
                body: RequestBody::GatedWorkload {
                    spec,
                    banned,
                    hold: SimDuration::from_millis(150),
                    max_retries: 25,
                    retry_latency: SimDuration::from_millis(60),
                },
            })
            .collect();
        let outcomes = e.run_batch(reqs);
        let on_fast = outcomes
            .iter()
            .filter(|o| {
                o.status
                    .report()
                    .map(|r| r.cpu_type() == Some(sky_cloud::CpuType::IntelXeon3_0))
                    .unwrap_or(false)
                    && o.status.is_success()
            })
            .count();
        assert!(
            on_fast as f64 >= 0.95 * outcomes.len() as f64,
            "focus-fastest should land nearly all requests on 3.0GHz: {on_fast}/300"
        );
        let retried = outcomes.iter().filter(|o| o.attempts > 1).count();
        assert!(
            retried > 100,
            "with ~40% fast share, many requests retry: {retried}"
        );
        // sky-lint: allow(D005, test assertion over a Vec in outcome order - a deterministic fold checking the billed total is positive)
        let total_retry_cost: f64 = outcomes.iter().map(|o| o.retry_cost_usd).sum();
        assert!(total_retry_cost > 0.0);
        // Retry overhead per retried request is ~152ms at 2GB: tiny vs
        // the multi-second zipper runtime.
        let mean_attempts: f64 =
            outcomes.iter().map(|o| o.attempts as f64).sum::<f64>() / outcomes.len() as f64;
        assert!(mean_attempts < 9.0, "mean attempts {mean_attempts}");
    }

    #[test]
    fn gated_retry_exhaustion_surfaces_decline() {
        let mut e = engine(78);
        let acct = e.create_account(Provider::Aws);
        // Homogeneous 2.5GHz zone: banning 2.5GHz can never succeed.
        let dep = e
            .deploy(acct, &az("us-east-2a"), 2048, Arch::X86_64)
            .unwrap();
        let outcomes = e.run_batch(vec![BatchRequest {
            deployment: dep,
            offset: SimDuration::ZERO,
            body: RequestBody::GatedWorkload {
                spec: WorkloadSpec::new(WorkloadKind::Sha1Hash),
                banned: sky_cloud::CpuSet::from_slice(&[sky_cloud::CpuType::IntelXeon2_5]),
                hold: SimDuration::from_millis(150),
                max_retries: 4,
                retry_latency: SimDuration::from_millis(60),
            },
        }]);
        let o = &outcomes[0];
        assert!(matches!(o.status, InvocationStatus::Declined(_)));
        assert_eq!(o.attempts, 5, "1 initial + 4 retries");
        assert_eq!(o.retry_billed, SimDuration::from_millis(4 * 152));
        assert!(o.retry_cost_usd > 0.0);
    }

    #[test]
    fn workload_runtime_tracks_cpu_factor() {
        let mut e = FaasEngine::new(Catalog::paper_world(7), {
            let mut c = FleetConfig::new(8);
            c.perf = PerfModel::deterministic();
            c
        });
        let acct = e.create_account(Provider::Aws);
        let dep = e
            .deploy(acct, &az("us-east-2a"), 2048, Arch::X86_64)
            .unwrap();
        let spec = WorkloadSpec::new(WorkloadKind::LogisticRegression);
        let outcomes = e.run_batch(vec![BatchRequest {
            deployment: dep,
            offset: SimDuration::ZERO,
            body: RequestBody::Workload { spec },
        }]);
        let billed = outcomes[0].billed;
        // 15s base on the 2.5GHz baseline + decode, inflated by diurnal
        // contention (<= 6%).
        let base = 15_000.0;
        let ms = billed.as_millis_f64();
        assert!(ms >= base && ms < base * 1.08 + 10.0, "billed {ms}ms");
    }

    #[test]
    fn payload_decode_cached_after_first_call() {
        let mut e = FaasEngine::new(Catalog::paper_world(7), {
            let mut c = FleetConfig::new(9);
            c.perf = PerfModel::deterministic();
            c
        });
        let acct = e.create_account(Provider::Aws);
        let dep = e
            .deploy(acct, &az("us-east-2a"), 2048, Arch::X86_64)
            .unwrap();
        let spec = WorkloadSpec::new(WorkloadKind::Sha1Hash).with_payload(5 * 1024 * 1024, 0xfeed);
        let mk = |offset_s: u64| BatchRequest {
            deployment: dep,
            offset: SimDuration::from_secs(offset_s),
            body: RequestBody::Workload { spec },
        };
        let outcomes = e.run_batch(vec![mk(0), mk(10)]);
        let first = outcomes[0].billed.as_millis_f64();
        let second = outcomes[1].billed.as_millis_f64();
        assert!(
            first - second > 60.0,
            "first call pays ~70ms decode: {first} vs {second}"
        );
    }

    #[test]
    fn day_tick_fires_on_advance() {
        let mut e = engine(10);
        let acct = e.create_account(Provider::Aws);
        let _ = e
            .deploy(acct, &az("us-west-1b"), 2048, Arch::X86_64)
            .unwrap();
        let before = e.platform(&az("us-west-1b")).unwrap().ground_truth_mix();
        e.advance_to(SimTime::start_of_day(10));
        let after = e.platform(&az("us-west-1b")).unwrap().ground_truth_mix();
        assert!(
            after.ape_percent(&before) > 1.0,
            "volatile zone should churn over 10 days"
        );
    }

    fn engine_with_profile(seed: u64, profile: ExecProfile) -> FaasEngine {
        let mut cfg = FleetConfig::new(seed);
        cfg.exec_profile = profile;
        FaasEngine::new(Catalog::paper_world(7), cfg)
    }

    fn sleep_req(dep: DeploymentId, offset: SimDuration) -> BatchRequest {
        BatchRequest {
            deployment: dep,
            offset,
            body: RequestBody::Sleep {
                duration: SimDuration::from_millis(250),
            },
        }
    }

    #[test]
    fn ephemeral_mode_every_request_cold_and_torn_down() {
        let mut e = engine_with_profile(21, ExecProfile::for_mode(ExecMode::Ephemeral));
        let acct = e.create_account(Provider::Aws);
        let dep = e
            .deploy(acct, &az("us-east-2a"), 2048, Arch::X86_64)
            .unwrap();
        let reqs: Vec<BatchRequest> = (0..8)
            .map(|i| sleep_req(dep, SimDuration::from_secs(i)))
            .collect();
        let outcomes = e.run_batch(reqs);
        for o in &outcomes {
            assert!(o.status.is_success());
            assert!(
                o.status.report().unwrap().new_container,
                "ephemeral never reuses: every start is cold"
            );
        }
        let unique: std::collections::BTreeSet<&str> = outcomes
            .iter()
            .map(|o| &*o.status.report().unwrap().instance_uuid)
            .collect();
        assert_eq!(unique.len(), 8, "a fresh FI per request");
        // The last FI's release event is still queued when the batch
        // resolves; draining it retires the final instance too.
        e.advance_by(SimDuration::from_secs(5));
        assert_eq!(
            e.platform(&az("us-east-2a")).unwrap().instance_count(),
            0,
            "nothing idles in ephemeral mode"
        );
        let snap = e.metrics_snapshot();
        assert_eq!(
            snap.counter("faas", "ephemeral_retires", &[("az", "us-east-2a")]),
            Some(8)
        );
    }

    #[test]
    fn persistent_mode_survives_arbitrary_idle_periods() {
        let mut e = engine_with_profile(22, ExecProfile::for_mode(ExecMode::Persistent));
        let acct = e.create_account(Provider::Aws);
        let dep = e
            .deploy(acct, &az("us-east-2a"), 2048, Arch::X86_64)
            .unwrap();
        let first = e.run_batch(vec![sleep_req(dep, SimDuration::ZERO)]);
        // Far past any keep-alive draw (5-9 min): a cached FI would be
        // long gone.
        e.advance_by(SimDuration::from_mins(90));
        let second = e.run_batch(vec![sleep_req(dep, SimDuration::ZERO)]);
        let (r1, r2) = (
            first[0].status.report().unwrap(),
            second[0].status.report().unwrap(),
        );
        assert!(r1.new_container);
        assert!(!r2.new_container, "persistent FI still warm after 90 min");
        assert_eq!(r1.instance_uuid, r2.instance_uuid);
        let snap = e.metrics_snapshot();
        assert_eq!(
            snap.counter("faas", "keepalive_evictions", &[("az", "us-east-2a")]),
            Some(0)
        );
    }

    #[test]
    fn checkpointed_mode_restores_after_keepalive_lapse() {
        let mut e = engine_with_profile(23, ExecProfile::for_mode(ExecMode::Checkpointed));
        let acct = e.create_account(Provider::Aws);
        let dep = e
            .deploy(acct, &az("us-east-2a"), 2048, Arch::X86_64)
            .unwrap();
        let first = e.run_batch(vec![sleep_req(dep, SimDuration::ZERO)]);
        assert!(first[0].status.report().unwrap().new_container);
        // 15 min: past the 9-min keep-alive ceiling, inside the 30-min
        // snapshot TTL.
        e.advance_by(SimDuration::from_mins(15));
        let second = e.run_batch(vec![sleep_req(dep, SimDuration::ZERO)]);
        let r2 = second[0].status.report().unwrap();
        assert!(
            !r2.new_container,
            "a CRIU-style restore replays /tmp: not a new container"
        );
        assert_ne!(
            first[0].status.report().unwrap().instance_uuid,
            r2.instance_uuid,
            "restored into a fresh FI"
        );
        let snap = e.metrics_snapshot();
        assert_eq!(
            snap.counter("faas", "restored_starts", &[("az", "us-east-2a")]),
            Some(1)
        );
        assert_eq!(
            snap.counter("faas", "snapshots_captured", &[("az", "us-east-2a")]),
            Some(1)
        );
        // Restore latency is deterministic and sits between warm
        // dispatch and the cold-start floor.
        let e2e = second[0].finished.saturating_since(second[0].arrived);
        let dispatch = e2e.as_micros() - second[0].billed.as_micros();
        assert_eq!(dispatch, e.config.restore_latency.as_micros());
    }

    #[test]
    fn branched_mode_burst_clones_share_parent() {
        let mut e = engine_with_profile(24, ExecProfile::for_mode(ExecMode::Branched));
        let acct = e.create_account(Provider::Aws);
        let dep = e
            .deploy(acct, &az("us-east-2a"), 2048, Arch::X86_64)
            .unwrap();
        // Seed the snapshot with one cold run.
        let first = e.run_batch(vec![sleep_req(dep, SimDuration::ZERO)]);
        assert!(first[0].status.report().unwrap().new_container);
        e.advance_by(SimDuration::from_secs(5));
        // Concurrent burst: one warm reuse at most, everything else
        // CoW-branches off the captured snapshot instead of cold-booting.
        let reqs: Vec<BatchRequest> = (0..6).map(|_| sleep_req(dep, SimDuration::ZERO)).collect();
        let outcomes = e.run_batch(reqs);
        assert!(outcomes.iter().all(|o| o.status.is_success()));
        let snap = e.metrics_snapshot();
        let branched = snap
            .counter("faas", "branched_starts", &[("az", "us-east-2a")])
            .unwrap();
        assert!(branched >= 4, "burst branches: {branched}/6");
        assert_eq!(
            snap.counter("faas", "cold_starts", &[("az", "us-east-2a")]),
            Some(1),
            "only the seeding request cold-started"
        );
    }

    #[test]
    fn prewarm_pool_serves_burst_without_cold_starts() {
        let profile = ExecProfile::default().with_pool(PoolPolicy::Fixed { target: 4, cap: 4 });
        let mut e = engine_with_profile(25, profile);
        let acct = e.create_account(Provider::Aws);
        let dep = e
            .deploy(acct, &az("us-east-2a"), 2048, Arch::X86_64)
            .unwrap();
        let reqs: Vec<BatchRequest> = (0..4).map(|_| sleep_req(dep, SimDuration::ZERO)).collect();
        let outcomes = e.run_batch(reqs);
        for o in &outcomes {
            assert!(o.status.is_success());
            assert!(
                !o.status.report().unwrap().new_container,
                "pooled starts are not new containers"
            );
        }
        let snap = e.metrics_snapshot();
        assert_eq!(
            snap.counter("faas", "pooled_starts", &[("az", "us-east-2a")]),
            Some(4)
        );
        assert_eq!(
            snap.counter("faas", "cold_starts", &[("az", "us-east-2a")]),
            Some(0)
        );
        assert_eq!(
            snap.counter("faas", "pool_provisioned", &[("az", "us-east-2a")]),
            Some(4)
        );
    }

    #[test]
    fn result_cache_replays_idempotent_workloads() {
        let profile = ExecProfile::default().with_result_cache_ttl(SimDuration::from_mins(10));
        let mut e = engine_with_profile(26, profile);
        let acct = e.create_account(Provider::Aws);
        let dep = e
            .deploy(acct, &az("us-east-2a"), 2048, Arch::X86_64)
            .unwrap();
        let spec = WorkloadSpec::new(WorkloadKind::Sha1Hash);
        let mk = |offset: SimDuration| BatchRequest {
            deployment: dep,
            offset,
            body: RequestBody::Workload { spec },
        };
        let outcomes = e.run_batch(vec![mk(SimDuration::ZERO), mk(SimDuration::from_mins(2))]);
        assert!(outcomes[0].billed > SimDuration::ZERO);
        assert_eq!(
            outcomes[1].billed,
            SimDuration::ZERO,
            "replay executes nothing"
        );
        assert_eq!(outcomes[1].cost_usd, 0.0);
        let r = outcomes[1].status.report().unwrap();
        assert!(!r.new_container, "a replay starts no container");
        // Past the TTL the cache misses and the workload runs again.
        e.advance_by(SimDuration::from_mins(30));
        let later = e.run_batch(vec![mk(SimDuration::ZERO)]);
        assert!(later[0].billed > SimDuration::ZERO, "expired entry re-runs");
        let snap = e.metrics_snapshot();
        assert_eq!(
            snap.counter("faas", "result_cache_hits", &[("az", "us-east-2a")]),
            Some(1)
        );
        assert_eq!(
            snap.counter("faas", "result_cache_misses", &[("az", "us-east-2a")]),
            Some(2)
        );
    }

    #[test]
    fn mode_billing_slices_partition_total() {
        let mut e = engine(27);
        let acct = e.create_account(Provider::Aws);
        let cached = e
            .deploy(acct, &az("us-east-2a"), 2048, Arch::X86_64)
            .unwrap();
        let checkpointed = e
            .deploy(acct, &az("us-east-2a"), 1024, Arch::X86_64)
            .unwrap();
        e.set_exec_profile(checkpointed, ExecProfile::for_mode(ExecMode::Checkpointed));
        for round in 0..3 {
            let reqs: Vec<BatchRequest> = (0..10)
                .map(|i| {
                    sleep_req(
                        if i % 2 == 0 { cached } else { checkpointed },
                        SimDuration::from_millis(i),
                    )
                })
                .collect();
            e.run_batch(reqs);
            // Long gaps force keep-alive lapses, so later rounds restore.
            e.advance_by(SimDuration::from_mins(12 + round));
        }
        let snap = e.metrics_snapshot();
        assert!(
            snap.counter("faas", "restored_starts", &[("az", "us-east-2a")])
                .unwrap()
                > 0,
            "checkpointed deployment restored at least once"
        );
        assert_eq!(
            snap.counter_sum("faas", "billed_mb_us_mode"),
            snap.counter_sum("faas", "billed_mb_us"),
            "per-mode billing slices must partition the billed total"
        );
    }

    #[test]
    fn stale_expire_events_on_recycled_slots_are_inert() {
        // Regression: Expire events queued for FIs that a cold-start
        // storm purged must not touch the slots once ephemeral traffic
        // recycles them — the slab's generation check makes the stale
        // keys miss.
        let mut e = engine(28);
        let acct = e.create_account(Provider::Aws);
        let zone = az("us-east-2a");
        let cached = e.deploy(acct, &zone, 2048, Arch::X86_64).unwrap();
        let ephemeral = e.deploy(acct, &zone, 2048, Arch::X86_64).unwrap();
        e.set_exec_profile(ephemeral, ExecProfile::for_mode(ExecMode::Ephemeral));
        // 10 idle FIs, 10 Expire events queued 5-9 minutes out.
        let reqs: Vec<BatchRequest> = (0..10)
            .map(|_| sleep_req(cached, SimDuration::ZERO))
            .collect();
        assert!(e.run_batch(reqs).iter().all(|o| o.status.is_success()));
        // Purge the warm pool out from under those events.
        let plan = FaultPlan::new()
            .with_event(
                zone.clone(),
                e.now() + SimDuration::from_secs(1),
                SimDuration::from_secs(1),
                FaultKind::ColdStartStorm { init_factor: 2.0 },
            )
            .unwrap();
        e.set_fault_plan(&plan);
        e.advance_by(SimDuration::from_secs(3));
        // Recycle the freed slots many times over under new generations.
        let reqs: Vec<BatchRequest> = (0..20)
            .map(|i| sleep_req(ephemeral, SimDuration::from_secs(i)))
            .collect();
        assert!(e.run_batch(reqs).iter().all(|o| o.status.is_success()));
        // Drain the stale Expire events: every one must no-op.
        e.advance_by(SimDuration::from_mins(15));
        let snap = e.metrics_snapshot();
        assert_eq!(
            snap.counter("faas", "keepalive_evictions", &[("az", "us-east-2a")]),
            Some(0),
            "stale expire events must not evict recycled slots"
        );
        assert_eq!(
            snap.counter("faas", "ephemeral_retires", &[("az", "us-east-2a")]),
            Some(20)
        );
        assert_eq!(e.platform(&zone).unwrap().instance_count(), 0);
    }

    #[test]
    fn determinism_same_seed_same_outcomes() {
        let run = |seed: u64| -> Vec<(bool, u64)> {
            let mut e = engine(seed);
            let acct = e.create_account(Provider::Aws);
            let dep = e
                .deploy(acct, &az("us-west-1b"), 2048, Arch::X86_64)
                .unwrap();
            let reqs: Vec<BatchRequest> = (0..100)
                .map(|i| BatchRequest {
                    deployment: dep,
                    offset: SimDuration::from_millis(i % 7),
                    body: RequestBody::Workload {
                        spec: WorkloadSpec::new(WorkloadKind::GraphBfs),
                    },
                })
                .collect();
            e.run_batch(reqs)
                .into_iter()
                .map(|o| (o.status.is_success(), o.billed.as_micros()))
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
