//! Virtual time for the simulation.
//!
//! Time is measured in microseconds since the start of the simulated
//! campaign ("sim epoch"). The calendar helpers assume the campaign starts
//! at midnight of day 0, which is how the temporal experiments in the paper
//! (EX-4, Figures 6–8) index their observations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, microseconds since the sim epoch.
///
/// `SimTime` is totally ordered and cheap to copy. Arithmetic with
/// [`SimDuration`] is saturating on underflow and panics on overflow in
/// debug builds (an overflowing simulation clock is always a bug).
///
/// ```
/// use sky_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_secs(90);
/// assert_eq!(t.as_secs_f64(), 90.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

pub const MICROS_PER_MILLI: u64 = 1_000;
pub const MICROS_PER_SEC: u64 = 1_000_000;
pub const MICROS_PER_MIN: u64 = 60 * MICROS_PER_SEC;
pub const MICROS_PER_HOUR: u64 = 60 * MICROS_PER_MIN;
pub const MICROS_PER_DAY: u64 = 24 * MICROS_PER_HOUR;

impl SimTime {
    /// The sim epoch: midnight of day 0.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw microseconds since the sim epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the sim epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the sim epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Calendar day index of this instant (day 0 starts at the epoch).
    pub const fn day(self) -> u64 {
        self.0 / MICROS_PER_DAY
    }

    /// Hour of day in `0..24`.
    pub const fn hour_of_day(self) -> u32 {
        ((self.0 % MICROS_PER_DAY) / MICROS_PER_HOUR) as u32
    }

    /// Fractional hour of day in `[0, 24)`, used by the diurnal load model.
    pub fn hour_of_day_f64(self) -> f64 {
        (self.0 % MICROS_PER_DAY) as f64 / MICROS_PER_HOUR as f64
    }

    /// The instant at which the given calendar day starts.
    pub const fn start_of_day(day: u64) -> Self {
        SimTime(day * MICROS_PER_DAY)
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * MICROS_PER_MILLI)
    }

    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * MICROS_PER_MIN)
    }

    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * MICROS_PER_HOUR)
    }

    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * MICROS_PER_DAY)
    }

    /// Construct from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Construct from fractional milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((ms * MICROS_PER_MILLI as f64).round() as u64)
    }

    pub const fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MILLI as f64
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Billed milliseconds, rounded **up** to the next whole millisecond,
    /// the rounding rule AWS Lambda applies to billed duration.
    pub const fn billed_millis(self) -> u64 {
        self.0.div_ceil(MICROS_PER_MILLI)
    }

    /// Scale by a non-negative factor (e.g. a CPU slowdown multiplier).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day();
        let rem = self.0 % MICROS_PER_DAY;
        let h = rem / MICROS_PER_HOUR;
        let m = (rem % MICROS_PER_HOUR) / MICROS_PER_MIN;
        let s = (rem % MICROS_PER_MIN) / MICROS_PER_SEC;
        let ms = (rem % MICROS_PER_SEC) / MICROS_PER_MILLI;
        write!(f, "d{day} {h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MICROS_PER_DAY {
            write!(f, "{:.1}d", self.0 as f64 / MICROS_PER_DAY as f64)
        } else if self.0 >= MICROS_PER_HOUR {
            write!(f, "{:.1}h", self.0 as f64 / MICROS_PER_HOUR as f64)
        } else if self.0 >= MICROS_PER_MIN {
            write!(f, "{:.1}min", self.0 as f64 / MICROS_PER_MIN as f64)
        } else if self.0 >= MICROS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.3}ms", self.as_millis_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_helpers() {
        let t = SimTime::start_of_day(3) + SimDuration::from_hours(5) + SimDuration::from_mins(30);
        assert_eq!(t.day(), 3);
        assert_eq!(t.hour_of_day(), 5);
        assert!((t.hour_of_day_f64() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn billed_millis_rounds_up() {
        assert_eq!(SimDuration::from_micros(0).billed_millis(), 0);
        assert_eq!(SimDuration::from_micros(1).billed_millis(), 1);
        assert_eq!(SimDuration::from_micros(999).billed_millis(), 1);
        assert_eq!(SimDuration::from_micros(1_000).billed_millis(), 1);
        assert_eq!(SimDuration::from_micros(1_001).billed_millis(), 2);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(10);
        assert_eq!(
            t.saturating_since(SimTime::ZERO),
            SimDuration::from_secs(10)
        );
        assert_eq!(SimTime::ZERO.saturating_since(t), SimDuration::ZERO);
        assert_eq!(
            t.checked_since(SimTime::ZERO),
            Some(SimDuration::from_secs(10))
        );
        assert_eq!(SimTime::ZERO.checked_since(t), None);
        assert_eq!(
            t - SimDuration::from_secs(4),
            SimTime::ZERO + SimDuration::from_secs(6)
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(150));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn from_fractional() {
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
        assert_eq!(
            SimDuration::from_millis_f64(1.5),
            SimDuration::from_micros(1500)
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::start_of_day(1) + SimDuration::from_millis(1500);
        assert_eq!(t.to_string(), "d1 00:00:01.500");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_mins(3).to_string(), "3.0min");
        assert_eq!(SimDuration::from_hours(22).to_string(), "22.0h");
        assert_eq!(SimDuration::from_days(7).to_string(), "7.0d");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [SimDuration::from_secs(1), SimDuration::from_millis(500)]
            .into_iter()
            .sum();
        assert_eq!(total, SimDuration::from_millis(1500));
    }
}
