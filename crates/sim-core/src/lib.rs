//! # sky-sim — deterministic discrete-event simulation engine
//!
//! Foundation crate for the `skyward` workspace, a reproduction of
//! *"Sky Computing for Serverless: Infrastructure Assessment to Support
//! Performance Enhancement"*. Everything above this crate (cloud topology,
//! the FaaS platform simulator, the sampling and routing system) is driven by
//! the primitives defined here:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time with microsecond
//!   resolution and calendar helpers (hour-of-day, day index) used by the
//!   diurnal and churn models.
//! * [`EventQueue`] — a stable, deterministic priority queue of timed events,
//!   implemented as a hierarchical timer wheel (see [`events`]).
//! * [`Slab`] — a reusable-slot arena for hot per-request / per-instance
//!   state, so steady-state simulations stop allocating.
//! * [`rng::SimRng`] — a from-scratch SplitMix64/xoshiro256++ PRNG with
//!   hierarchical stream derivation so every component of a simulation gets
//!   an independent, reproducible stream from one root seed.
//! * [`stats`] — online statistics (Welford), histograms, percentiles and
//!   exponentially-weighted averages used by the measurement harnesses.
//! * [`series`] — labelled (x, y) series and plain-text table rendering used
//!   by the figure/table regeneration binaries.
//! * [`metrics`] — the deterministic observability layer: a typed registry of
//!   counters/gauges/log-bucketed histograms, per-request span accounting,
//!   and mergeable snapshots with Prometheus-text and JSON exporters.
//!
//! The engine is intentionally free of wall-clock access: given the same
//! seed and inputs, every experiment in the workspace reproduces
//! bit-for-bit.
//!
//! ## Example
//!
//! ```
//! use sky_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_millis(5), "second");
//! queue.schedule(SimTime::ZERO, "first");
//! let (t0, e0) = queue.pop().unwrap();
//! assert_eq!((t0, e0), (SimTime::ZERO, "first"));
//! assert_eq!(queue.pop().unwrap().1, "second");
//! ```

pub mod events;
pub mod metrics;
pub mod rng;
pub mod series;
pub mod slab;
pub mod stats;
pub mod time;
pub mod trace;

pub use events::{BinaryHeapQueue, EventQueue};
pub use metrics::{
    LogHistogram, MetricHandle, MetricValue, MetricsRegistry, MetricsSnapshot, SpanPhase,
    SpanTracker,
};
pub use rng::SimRng;
pub use series::{Series, Table};
pub use slab::{Slab, SlotKey};
pub use stats::{Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceLevel, Tracer};
