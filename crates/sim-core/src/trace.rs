//! Lightweight structured tracing for simulations.
//!
//! The FaaS engine and the sampling campaigns emit [`TraceEvent`]s into a
//! bounded ring buffer. Traces are for debugging and assertions in tests —
//! they are *not* the measurement channel (that is `stats`/`series`), so a
//! full buffer silently drops the oldest events rather than growing without
//! bound during multi-week simulated campaigns.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Severity/verbosity of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// High-volume per-request details.
    Debug,
    /// Notable lifecycle events (scale-up, churn ticks, saturation).
    Info,
    /// Unexpected-but-handled conditions.
    Warn,
}

impl std::fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceLevel::Debug => write!(f, "DEBUG"),
            TraceLevel::Info => write!(f, "INFO"),
            TraceLevel::Warn => write!(f, "WARN"),
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event occurred.
    pub at: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Subsystem tag, e.g. `"faas.scale"` or `"sampling.poll"`.
    pub tag: &'static str,
    /// Human-readable message.
    pub message: String,
}

/// Bounded ring-buffer trace recorder.
///
/// ```
/// use sky_sim::{Tracer, TraceLevel, SimTime};
/// let mut t = Tracer::new(TraceLevel::Info, 100);
/// t.info(SimTime::ZERO, "faas.scale", "added 4 hosts".into());
/// t.debug(SimTime::ZERO, "faas.place", "dropped: below level".into());
/// assert_eq!(t.events().count(), 1);
/// ```
#[derive(Debug)]
pub struct Tracer {
    min_level: TraceLevel,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Tracer {
    /// A tracer recording events at or above `min_level`, keeping at most
    /// `capacity` events (oldest dropped first). A capacity of 0 retains
    /// nothing: every event passing the level filter is counted as
    /// dropped rather than silently promoted to a capacity of 1.
    pub fn new(min_level: TraceLevel, capacity: usize) -> Self {
        Tracer {
            min_level,
            capacity,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// A tracer that records nothing (capacity 1, level above Warn is not
    /// expressible, so we filter by an always-false capacity trick is not
    /// needed — Warn-only with tiny capacity is cheap enough).
    pub fn disabled() -> Self {
        Tracer {
            min_level: TraceLevel::Warn,
            capacity: 1,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Record an event if it passes the level filter. Level-filtered
    /// events are *not* dropped events: `dropped()` counts only events
    /// that would have been retained but for the capacity bound.
    pub fn record(&mut self, at: SimTime, level: TraceLevel, tag: &'static str, message: String) {
        if level < self.min_level {
            return;
        }
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        while self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            level,
            tag,
            message,
        });
    }

    /// Record at [`TraceLevel::Debug`].
    pub fn debug(&mut self, at: SimTime, tag: &'static str, message: String) {
        self.record(at, TraceLevel::Debug, tag, message);
    }

    /// Record at [`TraceLevel::Info`].
    pub fn info(&mut self, at: SimTime, tag: &'static str, message: String) {
        self.record(at, TraceLevel::Info, tag, message);
    }

    /// Record at [`TraceLevel::Warn`].
    pub fn warn(&mut self, at: SimTime, tag: &'static str, message: String) {
        self.record(at, TraceLevel::Warn, tag, message);
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events bearing the given tag.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.tag == tag)
    }

    /// Number of events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clear all retained events (the dropped counter is kept).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_filtering() {
        let mut t = Tracer::new(TraceLevel::Info, 10);
        t.debug(SimTime::ZERO, "x", "d".into());
        t.info(SimTime::ZERO, "x", "i".into());
        t.warn(SimTime::ZERO, "x", "w".into());
        let msgs: Vec<&str> = t.events().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["i", "w"]);
    }

    #[test]
    fn ring_buffer_eviction() {
        let mut t = Tracer::new(TraceLevel::Debug, 3);
        for i in 0..5 {
            t.debug(SimTime::from_micros(i), "x", format!("m{i}"));
        }
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<&str> = t.events().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
    }

    #[test]
    fn tag_filtering() {
        let mut t = Tracer::new(TraceLevel::Debug, 10);
        t.info(SimTime::ZERO, "a", "1".into());
        t.info(SimTime::ZERO, "b", "2".into());
        t.info(SimTime::ZERO, "a", "3".into());
        assert_eq!(t.with_tag("a").count(), 2);
        assert_eq!(t.with_tag("b").count(), 1);
        assert_eq!(t.with_tag("c").count(), 0);
    }

    #[test]
    fn zero_capacity_retains_nothing_and_counts_drops() {
        let mut t = Tracer::new(TraceLevel::Debug, 0);
        for i in 0..7 {
            t.debug(SimTime::from_micros(i), "x", format!("m{i}"));
        }
        assert_eq!(t.events().count(), 0, "capacity 0 must retain nothing");
        assert_eq!(t.dropped(), 7, "every passing event counts as dropped");
    }

    #[test]
    fn level_filtered_events_are_not_counted_as_dropped() {
        let mut t = Tracer::new(TraceLevel::Warn, 0);
        t.debug(SimTime::ZERO, "x", "filtered".into());
        t.info(SimTime::ZERO, "x", "filtered".into());
        assert_eq!(t.dropped(), 0, "filtered events never reach the ring");
        t.warn(SimTime::ZERO, "x", "dropped".into());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn drop_accounting_is_exact_across_eviction_and_clear() {
        let mut t = Tracer::new(TraceLevel::Debug, 4);
        for i in 0..10 {
            t.debug(SimTime::from_micros(i), "x", format!("m{i}"));
        }
        assert_eq!(t.events().count(), 4);
        assert_eq!(t.dropped(), 6, "retained + dropped must equal recorded");
        t.clear();
        assert_eq!(t.dropped(), 6, "clear() is not a drop");
        for i in 0..4 {
            t.debug(SimTime::from_micros(i), "x", format!("n{i}"));
        }
        assert_eq!(t.dropped(), 6, "refilling to capacity drops nothing");
        t.debug(SimTime::ZERO, "x", "one over".into());
        assert_eq!(t.dropped(), 7);
    }

    #[test]
    fn disabled_tracer_keeps_warnings_only() {
        let mut t = Tracer::disabled();
        t.info(SimTime::ZERO, "x", "ignored".into());
        t.warn(SimTime::ZERO, "x", "kept".into());
        assert_eq!(t.events().count(), 1);
    }
}
