//! Slab allocator for hot simulation state.
//!
//! A `Slab<T>` is a vector of reusable slots addressed by a dense
//! [`SlotKey`] (`u32`). Freed slots go on a LIFO free list and are handed
//! back to the next insert, so a steady-state simulation — which creates and
//! destroys function instances and in-flight request records continuously —
//! reaches a fixed working set and stops allocating entirely. Lookup is an
//! array index instead of the `BTreeMap` walk the platform previously paid
//! on every acquire/release/expire.
//!
//! Determinism: the slab is single-threaded and slot assignment depends only
//! on the sequence of `insert`/`remove` calls, which in this engine is
//! itself a pure function of the seed. Slots are recycled, so a stale key
//! can point at a *different* live occupant; callers that hold keys across
//! simulated time (e.g. timer events about a function instance) must pair
//! the key with an identity check (instance id, epoch) before acting — see
//! `AzPlatform` for the pattern.

/// Dense handle into a [`Slab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotKey(u32);

impl SlotKey {
    /// Raw slot index (stable for the lifetime of the occupant).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

enum Slot<T> {
    /// Free slot; value is the next free slot index, or `NIL`.
    Vacant(u32),
    Occupied(T),
}

const NIL: u32 = u32::MAX;

/// A reusable-slot arena; see the module docs.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// An empty slab with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free_head: NIL,
            len: 0,
        }
    }

    /// Store `value`, reusing the most recently freed slot if any.
    pub fn insert(&mut self, value: T) -> SlotKey {
        self.len += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            match self.slots[idx as usize] {
                Slot::Vacant(next) => self.free_head = next,
                Slot::Occupied(_) => unreachable!("free list points at occupied slot"),
            }
            self.slots[idx as usize] = Slot::Occupied(value);
            SlotKey(idx)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
            self.slots.push(Slot::Occupied(value));
            SlotKey(idx)
        }
    }

    /// Remove and return the occupant of `key`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant — a remove of a stale key is always a
    /// caller bug (identity checks belong *before* the remove).
    pub fn remove(&mut self, key: SlotKey) -> T {
        let slot = std::mem::replace(&mut self.slots[key.index()], Slot::Vacant(self.free_head));
        match slot {
            Slot::Occupied(value) => {
                self.free_head = key.0;
                self.len -= 1;
                value
            }
            Slot::Vacant(next) => {
                // Undo the replace so the free list stays intact.
                self.slots[key.index()] = Slot::Vacant(next);
                panic!("slab: remove of vacant slot {}", key.0);
            }
        }
    }

    /// Shared access to the occupant of `key`, if the slot is occupied.
    #[inline]
    pub fn get(&self, key: SlotKey) -> Option<&T> {
        match self.slots.get(key.index()) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Exclusive access to the occupant of `key`, if the slot is occupied.
    #[inline]
    pub fn get_mut(&mut self, key: SlotKey) -> Option<&mut T> {
        match self.slots.get_mut(key.index()) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Number of live occupants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab has no live occupants.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever allocated (live + free); the high-water mark of the
    /// working set.
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }

    /// Iterate over live occupants in slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (SlotKey, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied(v) => Some((SlotKey(i as u32), v)),
            Slot::Vacant(_) => None,
        })
    }

    /// Drop all occupants and reset the free list.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = NIL;
        self.len = 0;
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("len", &self.len)
            .field("slots", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get_mut(b), Some(&mut "b"));
        assert_eq!(slab.remove(a), "a");
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn freed_slots_are_reused_lifo() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        let c = slab.insert(3);
        slab.remove(b);
        slab.remove(a);
        // LIFO: a was freed last, so it is reused first.
        assert_eq!(slab.insert(4), a);
        assert_eq!(slab.insert(5), b);
        // No free slots left: grows.
        let d = slab.insert(6);
        assert_eq!(d.index(), 3);
        assert_eq!(slab.capacity_slots(), 4);
        assert_eq!(slab.len(), 4);
        let _ = c;
    }

    #[test]
    fn steady_state_stops_growing() {
        let mut slab = Slab::with_capacity(8);
        let mut live = Vec::new();
        for i in 0..1_000u64 {
            live.push(slab.insert(i));
            if live.len() > 7 {
                let k = live.remove(0);
                slab.remove(k);
            }
        }
        assert!(slab.capacity_slots() <= 8);
    }

    #[test]
    fn iter_is_in_slot_order() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let _b = slab.insert("b");
        let _c = slab.insert("c");
        slab.remove(a);
        let seen: Vec<&str> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, vec!["b", "c"]);
    }

    #[test]
    #[should_panic(expected = "remove of vacant slot")]
    fn double_remove_panics() {
        let mut slab = Slab::new();
        let k = slab.insert(());
        slab.remove(k);
        slab.remove(k);
    }
}
