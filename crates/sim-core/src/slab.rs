//! Slab allocator for hot simulation state.
//!
//! A `Slab<T>` is a vector of reusable slots addressed by a dense
//! [`SlotKey`] (`u32` index + `u32` generation). Freed slots go on a LIFO
//! free list and are handed back to the next insert, so a steady-state
//! simulation — which creates and destroys function instances and
//! in-flight request records continuously — reaches a fixed working set
//! and stops allocating entirely. Lookup is an array index instead of the
//! `BTreeMap` walk the platform previously paid on every
//! acquire/release/expire.
//!
//! Determinism: the slab is single-threaded and slot assignment depends only
//! on the sequence of `insert`/`remove` calls, which in this engine is
//! itself a pure function of the seed. Slots are recycled, but every
//! recycle bumps the slot's **generation**, and a [`SlotKey`] only
//! resolves while its generation matches the slot's: a stale key held
//! across simulated time (e.g. a timer event about a retired function
//! instance whose slot has since been reissued) returns `None` from
//! [`Slab::get`] instead of silently aliasing the new occupant. Callers
//! may still layer identity checks (instance id, epoch) on top — see
//! `AzPlatform` — but the generation makes stale-key access a detected
//! miss rather than undefined simulation behaviour.

/// Generational handle into a [`Slab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotKey {
    index: u32,
    generation: u32,
}

impl SlotKey {
    /// Raw slot index (stable for the lifetime of the occupant; reused —
    /// with a new generation — after removal).
    pub const fn index(self) -> usize {
        self.index as usize
    }

    /// The key's generation: a slot's generation is bumped on every
    /// removal, so a key resolves only while its occupant is alive.
    pub const fn generation(self) -> u32 {
        self.generation
    }
}

enum Slot<T> {
    /// Free slot; value is the next free slot index, or `NIL`.
    Vacant(u32),
    Occupied(T),
}

const NIL: u32 = u32::MAX;

/// A reusable-slot arena; see the module docs.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    /// Current generation of each slot, parallel to `slots`. Bumped on
    /// removal so stale keys miss instead of aliasing.
    generations: Vec<u32>,
    free_head: u32,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            generations: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// An empty slab with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            generations: Vec::with_capacity(cap),
            free_head: NIL,
            len: 0,
        }
    }

    /// Store `value`, reusing the most recently freed slot if any.
    pub fn insert(&mut self, value: T) -> SlotKey {
        self.len += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            match self.slots[idx as usize] {
                Slot::Vacant(next) => self.free_head = next,
                Slot::Occupied(_) => unreachable!("free list points at occupied slot"),
            }
            self.slots[idx as usize] = Slot::Occupied(value);
            SlotKey {
                index: idx,
                generation: self.generations[idx as usize],
            }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
            self.slots.push(Slot::Occupied(value));
            self.generations.push(0);
            SlotKey {
                index: idx,
                generation: 0,
            }
        }
    }

    /// Remove and return the occupant of `key`, bumping the slot's
    /// generation so every outstanding copy of `key` goes stale.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant or the key's generation is stale — a
    /// remove through a dead key is always a caller bug (identity checks
    /// belong *before* the remove).
    pub fn remove(&mut self, key: SlotKey) -> T {
        assert_eq!(
            self.generations[key.index()],
            key.generation,
            "slab: remove through stale key for slot {}",
            key.index
        );
        let slot = std::mem::replace(&mut self.slots[key.index()], Slot::Vacant(self.free_head));
        match slot {
            Slot::Occupied(value) => {
                self.free_head = key.index;
                self.generations[key.index()] = self.generations[key.index()].wrapping_add(1);
                self.len -= 1;
                value
            }
            Slot::Vacant(next) => {
                // Undo the replace so the free list stays intact.
                self.slots[key.index()] = Slot::Vacant(next);
                panic!("slab: remove of vacant slot {}", key.index);
            }
        }
    }

    /// Shared access to the occupant of `key`: `None` if the slot is
    /// vacant or the key's generation is stale (the occupant it named has
    /// been removed, even if the slot has been reissued since).
    #[inline]
    pub fn get(&self, key: SlotKey) -> Option<&T> {
        if self.generations.get(key.index()) != Some(&key.generation) {
            return None;
        }
        match self.slots.get(key.index()) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Exclusive access to the occupant of `key`, under the same
    /// generation check as [`Slab::get`].
    #[inline]
    pub fn get_mut(&mut self, key: SlotKey) -> Option<&mut T> {
        if self.generations.get(key.index()) != Some(&key.generation) {
            return None;
        }
        match self.slots.get_mut(key.index()) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Number of live occupants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab has no live occupants.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever allocated (live + free); the high-water mark of the
    /// working set.
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }

    /// Iterate over live occupants in slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (SlotKey, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied(v) => Some((
                SlotKey {
                    index: i as u32,
                    generation: self.generations[i],
                },
                v,
            )),
            Slot::Vacant(_) => None,
        })
    }

    /// Drop all occupants and reset the free list (generations restart:
    /// keys from before a `clear` must not be retained).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.generations.clear();
        self.free_head = NIL;
        self.len = 0;
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("len", &self.len)
            .field("slots", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get_mut(b), Some(&mut "b"));
        assert_eq!(slab.remove(a), "a");
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn freed_slots_are_reused_lifo_with_fresh_generations() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        let c = slab.insert(3);
        slab.remove(b);
        slab.remove(a);
        // LIFO: a's slot was freed last, so it is reused first — under a
        // bumped generation, so the old key stays stale.
        let a2 = slab.insert(4);
        assert_eq!(a2.index(), a.index());
        assert_ne!(a2, a, "recycled slot must carry a new generation");
        let b2 = slab.insert(5);
        assert_eq!(b2.index(), b.index());
        // No free slots left: grows.
        let d = slab.insert(6);
        assert_eq!(d.index(), 3);
        assert_eq!(slab.capacity_slots(), 4);
        assert_eq!(slab.len(), 4);
        let _ = c;
    }

    #[test]
    fn stale_key_misses_after_slot_reuse() {
        let mut slab = Slab::new();
        let a = slab.insert("old");
        slab.remove(a);
        let b = slab.insert("new");
        assert_eq!(b.index(), a.index(), "slot recycled");
        assert_eq!(slab.get(a), None, "stale key must not alias new occupant");
        assert_eq!(slab.get_mut(a), None);
        assert_eq!(slab.get(b), Some(&"new"));
    }

    #[test]
    fn generation_survives_multiple_recycles() {
        let mut slab = Slab::new();
        let mut keys = Vec::new();
        for i in 0..10 {
            let k = slab.insert(i);
            keys.push(k);
            slab.remove(k);
        }
        let live = slab.insert(99);
        for k in keys {
            assert_eq!(slab.get(k), None, "every historical key is stale");
        }
        assert_eq!(slab.get(live), Some(&99));
    }

    #[test]
    fn steady_state_stops_growing() {
        let mut slab = Slab::with_capacity(8);
        let mut live = Vec::new();
        for i in 0..1_000u64 {
            live.push(slab.insert(i));
            if live.len() > 7 {
                let k = live.remove(0);
                slab.remove(k);
            }
        }
        assert!(slab.capacity_slots() <= 8);
    }

    #[test]
    fn iter_is_in_slot_order() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let _b = slab.insert("b");
        let _c = slab.insert("c");
        slab.remove(a);
        let seen: Vec<&str> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, vec!["b", "c"]);
    }

    #[test]
    fn iter_keys_resolve() {
        let mut slab = Slab::new();
        let a = slab.insert(10);
        slab.remove(a);
        slab.insert(20);
        slab.insert(30);
        for (k, v) in slab.iter() {
            assert_eq!(slab.get(k), Some(v));
        }
    }

    #[test]
    #[should_panic(expected = "remove through stale key")]
    fn double_remove_panics() {
        let mut slab = Slab::new();
        let k = slab.insert(());
        slab.remove(k);
        // The successful remove bumped the generation, so the second
        // remove through the same key is caught as stale.
        slab.remove(k);
    }

    #[test]
    #[should_panic(expected = "remove through stale key")]
    fn stale_remove_panics() {
        let mut slab = Slab::new();
        let k = slab.insert(1);
        slab.remove(k);
        slab.insert(2);
        slab.remove(k);
    }
}
