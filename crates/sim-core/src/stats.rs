//! Online statistics, histograms and percentile helpers.
//!
//! These are the measurement primitives used by the experiment harnesses:
//! Welford-style running moments for runtime/cost aggregation, a fixed-width
//! histogram for latency distributions, and percentile extraction over
//! recorded samples.

use serde::{Deserialize, Serialize};

/// Running mean / variance / min / max over a stream of `f64` samples
/// (Welford's algorithm; numerically stable, O(1) memory).
///
/// ```
/// use sky_sim::OnlineStats;
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (divides by n); 0 if fewer than 2 samples.
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by n−1); 0 if fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest sample; `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample; `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Coefficient of variation (population); 0 if the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean() == 0.0 {
            0.0
        } else {
            self.population_std_dev() / self.mean().abs()
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// A histogram of `n` equal-width buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "histogram needs at least one bucket");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((v - self.lo) / w) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Counts per bucket (excluding under/overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile (`q` in `[0,1]`) by linear scan of buckets;
    /// returns the left edge of the bucket holding the quantile sample.
    /// `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + i as f64 * w);
            }
        }
        Some(self.hi)
    }
}

/// Exact percentile of a slice (`q` in `[0, 1]`), by sorting a copy.
/// Uses the "nearest rank" method. Returns `None` on an empty slice.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    Some(v[rank - 1])
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create with smoothing factor `alpha` in `(0, 1]`; larger alpha
    /// weights recent samples more.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Fold in one observation and return the updated average.
    pub fn update(&mut self, v: f64) -> f64 {
        let next = match self.value {
            None => v,
            Some(prev) => prev + self.alpha * (v - prev),
        };
        self.value = Some(next);
        next
    }

    /// Current average, if any observation has been made.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let s: OnlineStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert!((s.sum() - 10.0).abs() < 1e-12);
        assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let all: OnlineStats = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut a: OnlineStats = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let b: OnlineStats = (50..100).map(|i| (i as f64).sin() * 10.0).collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn histogram_buckets_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for v in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.buckets()[0], 2); // 0.0 and 0.5
        assert_eq!(h.buckets()[5], 1); // 5.0
        assert_eq!(h.buckets()[9], 1); // 9.99
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 49.0).abs() <= 1.0, "median {median}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.0);
        assert!(Histogram::new(0.0, 1.0, 2).quantile(0.5).is_none());
    }

    #[test]
    fn exact_percentile() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.5), Some(50.0));
        assert_eq!(percentile(&v, 0.99), Some(99.0));
        assert_eq!(percentile(&v, 1.0), Some(100.0));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.update(10.0);
        assert_eq!(e.value(), Some(10.0));
        for _ in 0..64 {
            e.update(2.0);
        }
        assert!((e.value().unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }
}
