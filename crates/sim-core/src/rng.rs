//! Deterministic pseudo-random number generation.
//!
//! The workspace's reproducibility guarantee rests on this module: a single
//! root `u64` seed is expanded into independent per-component streams via
//! SplitMix64, and each stream is a xoshiro256++ generator. We implement
//! both algorithms from scratch (they are a dozen lines each) rather than
//! relying on `rand`'s `StdRng`, whose algorithm is explicitly *not* stable
//! across crate versions — a property we cannot accept when every figure in
//! `EXPERIMENTS.md` must reproduce bit-for-bit.
//!
//! Distribution helpers cover exactly what the simulation needs: uniforms,
//! normals (Box–Muller), lognormals for runtime noise, exponentials for
//! arrival jitter, and weighted choice for CPU-mix sampling.

use serde::{Deserialize, Serialize};

/// SplitMix64 step; used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator with hierarchical stream
/// derivation.
///
/// ```
/// use sky_sim::SimRng;
/// let mut a = SimRng::seed_from(42).derive("placement");
/// let mut b = SimRng::seed_from(42).derive("placement");
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed + label => same stream
/// let mut c = SimRng::seed_from(42).derive("churn");
/// assert_ne!(a.next_u64(), c.next_u64()); // different labels diverge
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a root seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child stream named by `label`.
    ///
    /// The child's seed is a hash of this generator's *current* state and
    /// the label, so deriving the same label twice from an untouched parent
    /// yields the same stream, while different labels (or different parent
    /// states) yield unrelated streams.
    pub fn derive(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        for &w in &self.s {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SimRng::seed_from(h)
    }

    /// Derive an independent child stream indexed by an integer (e.g. one
    /// stream per host or per deployment).
    pub fn derive_idx(&self, label: &str, idx: u64) -> SimRng {
        let mut child = self.derive(label);
        let mut sm = child.next_u64() ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` using Lemire's rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below requires n > 0");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n {
                return (m >> 64) as u64;
            }
            // Rejection zone check.
            let t = n.wrapping_neg() % n;
            if lo >= t {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box–Muller.
    pub fn next_standard_normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with given mean and standard deviation.
    pub fn next_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.next_standard_normal()
    }

    /// Lognormal multiplier with unit median and the given coefficient of
    /// sigma (of the underlying normal). Used for runtime noise: a value of
    /// `sigma = 0.04` yields ~±4 % typical jitter.
    pub fn lognormal_noise(&mut self, sigma: f64) -> f64 {
        (sigma * self.next_standard_normal()).exp()
    }

    /// Exponentially distributed value with the given mean.
    pub fn next_exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Index drawn from a discrete distribution proportional to `weights`.
    ///
    /// Zero-weight entries are never selected.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        assert!(
            !weights.is_empty(),
            "weighted_choice requires non-empty weights"
        );
        let mut total = 0.0;
        for &w in weights {
            assert!(
                w.is_finite() && w >= 0.0,
                "weights must be finite and non-negative"
            );
            total += w;
        }
        assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        // Floating-point slop: return the last non-zero entry.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("at least one non-zero weight")
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A fresh 128-bit identifier rendered as a hex UUID-ish string, used
    /// for function-instance identities in SAAF reports.
    pub fn next_uuid(&mut self) -> String {
        let a = self.next_u64();
        let b = self.next_u64();
        format!(
            "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
            (a >> 32) as u32,
            (a >> 16) as u16,
            a as u16,
            (b >> 48) as u16,
            b & 0xffff_ffff_ffff
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_diverge_by_label_and_index() {
        let root = SimRng::seed_from(1);
        let mut x = root.derive("a");
        let mut y = root.derive("b");
        assert_ne!(
            (0..8).map(|_| x.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| y.next_u64()).collect::<Vec<_>>()
        );
        let mut i0 = root.derive_idx("host", 0);
        let mut i1 = root.derive_idx("host", 1);
        assert_ne!(i0.next_u64(), i1.next_u64());
    }

    #[test]
    fn uniform_unit_interval() {
        let mut rng = SimRng::seed_from(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = SimRng::seed_from(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_endpoints() {
        let mut rng = SimRng::seed_from(4);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            match rng.range_inclusive(5, 8) {
                5 => lo_seen = true,
                8 => hi_seen = true,
                v => assert!((5..=8).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed_from(11);
        let n = 20_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let v = rng.next_normal(10.0, 2.0);
            sum += v;
            sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var - 4.0).abs() < 0.25);
    }

    #[test]
    fn lognormal_noise_has_unit_median() {
        let mut rng = SimRng::seed_from(12);
        let mut below = 0;
        let n = 10_000;
        for _ in 0..n {
            if rng.lognormal_noise(0.05) < 1.0 {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "median fraction {frac}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::seed_from(13);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.next_exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = SimRng::seed_from(14);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_choice(&weights)] += 1;
        }
        assert_eq!(counts[0], 0, "zero weight must never be chosen");
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn weighted_choice_rejects_all_zero() {
        SimRng::seed_from(1).weighted_choice(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(15);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle should move something"
        );
    }

    #[test]
    fn uuid_format() {
        let mut rng = SimRng::seed_from(16);
        let u = rng.next_uuid();
        assert_eq!(u.len(), 36);
        assert_eq!(u.chars().filter(|&c| c == '-').count(), 4);
        assert_ne!(u, rng.next_uuid());
    }
}
