//! Labelled data series and plain-text tables.
//!
//! The benchmark harness regenerates each of the paper's figures as one or
//! more [`Series`] and each table as a [`Table`]. Rendering is plain,
//! column-aligned text so the output can be diffed, pasted into
//! `EXPERIMENTS.md`, or post-processed into real plots.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A named series of `(x, y)` points, e.g. "characterization APE vs number
/// of sampled FIs for us-west-1a".
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The y values alone.
    pub fn ys(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, y)| y)
    }

    /// Smallest x at which `y <= threshold`, scanning in x order.
    /// Used for "samples needed to reach 95 % accuracy"-type questions.
    pub fn first_x_below(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, y)| y <= threshold)
            .map(|&(x, _)| x)
    }

    /// Render the series as a two-column text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.name);
        for &(x, y) in &self.points {
            let _ = writeln!(out, "{x:>14.4}  {y:>14.4}");
        }
        out
    }
}

impl FromIterator<(f64, f64)> for Series {
    fn from_iter<T: IntoIterator<Item = (f64, f64)>>(iter: T) -> Self {
        Series {
            name: String::new(),
            points: iter.into_iter().collect(),
        }
    }
}

/// A column-aligned text table with a title, header row, and data rows.
///
/// ```
/// use sky_sim::Table;
/// let mut t = Table::new("Demo", &["region", "share"]);
/// t.row(&["us-west-1a".to_string(), "0.42".to_string()]);
/// let text = t.render();
/// assert!(text.contains("us-west-1a"));
/// assert!(text.contains("region"));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells.to_vec());
    }

    /// Append a data row from anything displayable.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    pub fn title(&self) -> &str {
        &self.title
    }

    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as column-aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{cell:>w$}", w = widths[i]);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Format a float as a fixed-precision string (helper for table cells).
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format a fraction as a percentage string, e.g. `0.123 -> "12.3%"`.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Format a dollar amount with four decimal places, e.g. `"$0.0123"`.
pub fn fmt_usd(v: f64) -> String {
    format!("${v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates_points() {
        let mut s = Series::new("ape");
        s.push(1.0, 25.0);
        s.push(2.0, 10.0);
        s.push(3.0, 4.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.points()[1], (2.0, 10.0));
        assert_eq!(s.first_x_below(5.0), Some(3.0));
        assert_eq!(s.first_x_below(1.0), None);
    }

    #[test]
    fn series_renders_name_and_points() {
        let mut s = Series::new("test-series");
        s.push(1.0, 2.0);
        let r = s.render();
        assert!(r.contains("# test-series"));
        assert!(r.contains("1.0000"));
        assert!(r.contains("2.0000"));
    }

    #[test]
    fn table_alignment_and_rows() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row(&["xxxx".into(), "1".into()]);
        t.row_display(&[12345, 6]);
        assert_eq!(t.n_rows(), 2);
        let r = t.render();
        assert!(r.contains("== T =="));
        // Each data line must be at least as wide as the header line.
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[3].len() >= "a  long-header".len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.1825), "18.2%");
        assert_eq!(fmt_usd(0.04), "$0.0400");
    }
}
