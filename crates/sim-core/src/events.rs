//! Deterministic timed event queue.
//!
//! A thin wrapper over a binary heap keyed by `(SimTime, sequence)`. The
//! sequence number makes ordering of same-instant events stable (FIFO in
//! scheduling order), which is essential for reproducibility: two events
//! scheduled for the same microsecond must always pop in the same order.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of `(SimTime, E)` pairs popping in time order, with
/// FIFO tie-breaking for events scheduled at the same instant.
///
/// ```
/// use sky_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(10), 'b');
/// q.schedule(SimTime::from_micros(10), 'c');
/// q.schedule(SimTime::from_micros(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// An empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Pre-allocate room for at least `additional` more events, so a
    /// burst of `schedule` calls (e.g. a batch's arrival fan-out) does
    /// not reallocate the heap repeatedly.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedule `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (i, us) in [50u64, 10, 30, 20, 40].iter().enumerate() {
            q.schedule(SimTime::from_micros(*us), i);
        }
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.as_micros())).collect();
        assert_eq!(times, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_micros(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(20)));
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + SimDuration::from_secs(1), ());
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }
}
