//! Deterministic timed event queue.
//!
//! [`EventQueue`] is a hierarchical timer wheel keyed by `(SimTime, sequence)`.
//! The sequence number makes ordering of same-instant events stable (FIFO in
//! scheduling order), which is essential for reproducibility: two events
//! scheduled for the same microsecond must always pop in the same order.
//!
//! ## Structure
//!
//! The wheel has two levels:
//!
//! * a **near wheel** of [`NEAR_SLOTS`] slots, each covering
//!   [`SLOT_GRAIN_US`] microseconds, spanning one *window* of
//!   `NEAR_SLOTS * SLOT_GRAIN_US` ≈ 1.05 simulated seconds; and
//! * **overflow levels**: a sorted map from window index to the events due in
//!   that window. When the near wheel drains, the earliest overflow window is
//!   cascaded into the near wheel in one batch.
//!
//! Events land in a slot unsorted; the slot is sorted once when the cursor
//! opens it (`sort_unstable` on `(at, seq)` preserves FIFO because sequence
//! numbers are unique). An occupancy bitmap makes "next non-empty slot" a
//! handful of word scans. Events scheduled at or before the open slot — the
//! "past" relative to the cursor, which the engine produces when a handler
//! schedules a follow-up for *now* — are merge-inserted into the already
//! sorted open slot, so pop order is exactly that of a binary heap.
//!
//! Compared to the [`BinaryHeapQueue`] it replaced, the wheel trades the
//! per-operation `O(log n)` sift (which copies whole entries at every level)
//! for amortized O(1) bucketing plus one sort per slot, and dispatches each
//! opened slot as a batch. [`BinaryHeapQueue`] is kept as the executable
//! reference model for property tests and microbenchmarks.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// Microseconds covered by one near-wheel slot (power of two, ≈ 1 ms).
pub const SLOT_GRAIN_US: u64 = 1 << 10;
/// Number of slots in the near wheel (power of two).
pub const NEAR_SLOTS: usize = 1 << 10;
/// Microseconds covered by one full rotation of the near wheel.
pub const WINDOW_US: u64 = SLOT_GRAIN_US * NEAR_SLOTS as u64;

const BITMAP_WORDS: usize = NEAR_SLOTS / 64;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A priority queue of `(SimTime, E)` pairs popping in time order, with
/// FIFO tie-breaking for events scheduled at the same instant.
///
/// ```
/// use sky_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(10), 'b');
/// q.schedule(SimTime::from_micros(10), 'c');
/// q.schedule(SimTime::from_micros(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    /// The open slot, sorted **descending** by `(at, seq)` so pop is a
    /// `Vec::pop` from the back. Holds every pending event whose absolute
    /// slot index is `< next_slot_abs`.
    current: Vec<Entry<E>>,
    /// Near-wheel slots for the current window, unsorted.
    slots: Vec<Vec<Entry<E>>>,
    /// Occupancy bitmap over `slots`.
    occupied: [u64; BITMAP_WORDS],
    /// Index of the window the near wheel currently represents.
    window: u64,
    /// Absolute slot index (`at_us / SLOT_GRAIN_US`) of the next slot the
    /// cursor will open. Events due in earlier slots go to `current`.
    next_slot_abs: u64,
    /// Windows beyond the near wheel, keyed by window index.
    overflow: BTreeMap<u64, Vec<Entry<E>>>,
    len: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(NEAR_SLOTS);
        slots.resize_with(NEAR_SLOTS, Vec::new);
        EventQueue {
            current: Vec::new(),
            slots,
            occupied: [0; BITMAP_WORDS],
            window: 0,
            next_slot_abs: 0,
            overflow: BTreeMap::new(),
            len: 0,
            next_seq: 0,
        }
    }

    /// An empty queue with pre-allocated capacity for the open slot.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.current.reserve(cap.min(1 << 16));
        q
    }

    /// Pre-allocate room in the open slot. Kept for API compatibility with
    /// the binary-heap queue; the wheel allocates per slot, so this only
    /// sizes the merge buffer a burst of same-instant events lands in.
    pub fn reserve(&mut self, additional: usize) {
        self.current.reserve(additional.min(1 << 16));
    }

    /// Schedule `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let entry = Entry { at, seq, event };
        let abs = at.as_micros() / SLOT_GRAIN_US;
        if abs < self.next_slot_abs {
            // Due in an already-opened slot: merge into the sorted open slot
            // so it pops in exact `(at, seq)` order relative to what remains.
            let key = entry.key();
            let idx = self.current.partition_point(|e| e.key() > key);
            self.current.insert(idx, entry);
        } else if abs / NEAR_SLOTS as u64 == self.window {
            let slot = (abs % NEAR_SLOTS as u64) as usize;
            self.slots[slot].push(entry);
            self.occupied[slot / 64] |= 1u64 << (slot % 64);
        } else {
            self.overflow
                .entry(at.as_micros() / WINDOW_US)
                .or_default()
                .push(entry);
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if let Some(e) = self.current.pop() {
            self.len -= 1;
            return Some((e.at, e.event));
        }
        loop {
            // Scan the near wheel for the next occupied slot.
            let local = (self.next_slot_abs - self.window * NEAR_SLOTS as u64) as usize;
            if let Some(slot) = self.next_occupied(local) {
                self.open_slot(slot);
                let e = self.current.pop().expect("opened slot is non-empty");
                self.len -= 1;
                return Some((e.at, e.event));
            }
            // Near wheel exhausted: cascade the earliest overflow window.
            let (win, entries) = self.overflow.pop_first()?;
            self.window = win;
            self.next_slot_abs = win * NEAR_SLOTS as u64;
            for entry in entries {
                let slot = ((entry.at.as_micros() / SLOT_GRAIN_US) % NEAR_SLOTS as u64) as usize;
                self.slots[slot].push(entry);
                self.occupied[slot / 64] |= 1u64 << (slot % 64);
            }
        }
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.current.last() {
            return Some(e.at);
        }
        let local = (self.next_slot_abs - self.window * NEAR_SLOTS as u64) as usize;
        if let Some(slot) = self.next_occupied(local) {
            return self.slots[slot].iter().map(|e| e.at).min();
        }
        self.overflow
            .first_key_value()
            .and_then(|(_, v)| v.iter().map(|e| e.at).min())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.current.clear();
        for slot in &mut self.slots {
            slot.clear();
        }
        self.occupied = [0; BITMAP_WORDS];
        self.overflow.clear();
        self.window = 0;
        self.next_slot_abs = 0;
        self.len = 0;
    }

    /// First occupied slot index `>= from` in the near wheel, if any.
    #[inline]
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= NEAR_SLOTS {
            return None;
        }
        let mut word_idx = from / 64;
        let mut word = self.occupied[word_idx] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(word_idx * 64 + word.trailing_zeros() as usize);
            }
            word_idx += 1;
            if word_idx >= BITMAP_WORDS {
                return None;
            }
            word = self.occupied[word_idx];
        }
    }

    /// Move slot `slot`'s events into the open buffer, sorted for popping,
    /// and advance the cursor past it. The whole slot becomes one dispatch
    /// batch: it is sorted once, then drained by O(1) pops.
    fn open_slot(&mut self, slot: usize) {
        debug_assert!(self.current.is_empty());
        std::mem::swap(&mut self.current, &mut self.slots[slot]);
        self.occupied[slot / 64] &= !(1u64 << (slot % 64));
        // Descending, so `Vec::pop` yields ascending `(at, seq)`.
        self.current
            .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
        self.next_slot_abs = self.window * NEAR_SLOTS as u64 + slot as u64 + 1;
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("next_time", &self.peek_time())
            .finish()
    }
}

struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original binary-heap event queue, kept as the executable reference
/// model: the timer wheel's property tests assert pop-order equality against
/// it, and `crates/bench/benches/simulator.rs` compares the two.
///
/// Semantics are identical to [`EventQueue`]: pops in `(SimTime, seq)` order,
/// FIFO for same-instant events.
#[derive(Default)]
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
}

impl<E> BinaryHeapQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// An empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { at, seq, event });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (i, us) in [50u64, 10, 30, 20, 40].iter().enumerate() {
            q.schedule(SimTime::from_micros(*us), i);
        }
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.as_micros())).collect();
        assert_eq!(times, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), "a");
        q.schedule(SimTime::from_micros(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_micros(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(20)));
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + SimDuration::from_secs(1), ());
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn schedule_before_cursor_pops_next() {
        // A handler at t=100ms schedules a follow-up for t=50ms (the past
        // relative to the cursor). Heap semantics: it pops next.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100_000), "now");
        q.schedule(SimTime::from_micros(200_000), "later");
        assert_eq!(q.pop().unwrap().1, "now");
        q.schedule(SimTime::from_micros(50_000), "past");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(50_000)));
        assert_eq!(q.pop().unwrap().1, "past");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    #[test]
    fn far_future_events_cascade_through_overflow() {
        let mut q = EventQueue::new();
        // Several overflow windows apart, scheduled out of order.
        q.schedule(SimTime::ZERO + SimDuration::from_days(7), "week");
        q.schedule(SimTime::ZERO + SimDuration::from_secs(3), "soon");
        q.schedule(SimTime::ZERO + SimDuration::from_hours(1), "hour");
        q.schedule(SimTime::from_micros(5), "now");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(5)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["now", "soon", "hour", "week"]);
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_matches_heap_reference() {
        // Randomized interleavings against the reference model; mirrors the
        // heavier property test in `tests/tests/properties.rs`.
        let mut rng = SimRng::seed_from(7).derive("events-unit");
        let mut wheel = EventQueue::new();
        let mut heap = BinaryHeapQueue::new();
        let mut now = 0u64;
        for _ in 0..5_000 {
            if rng.next_below(3) == 0 {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b);
                if let Some((t, _)) = a {
                    now = now.max(t.as_micros());
                }
            } else {
                // Mix of near, far-future (overflow) and tie-heavy times.
                let at = match rng.next_below(4) {
                    0 => now + rng.next_below(SLOT_GRAIN_US * 4),
                    1 => now + rng.next_below(WINDOW_US * 3),
                    2 => now.saturating_sub(rng.next_below(1_000)),
                    _ => now + SLOT_GRAIN_US * rng.next_below(8),
                };
                let tag = rng.next_u64();
                wheel.schedule(SimTime::from_micros(at), tag);
                heap.schedule(SimTime::from_micros(at), tag);
            }
            assert_eq!(wheel.len(), heap.len());
        }
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
