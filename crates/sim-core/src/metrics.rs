//! Deterministic, mergeable observability: a typed registry of counters,
//! gauges and log-bucketed latency histograms, per-request span
//! accounting, and Prometheus-text / JSON exporters.
//!
//! The paper's method is *measurement*: per-AZ CPU mixes, tail latencies
//! and cost deltas only mean something if the numbers reproduce. This
//! module is therefore built around one contract:
//!
//! > A [`MetricsSnapshot`] is a pure function of the simulation inputs,
//! > and [`MetricsSnapshot::merge`] is associative and — after the
//! > order-normalization every constructor performs — commutative, so
//! > the PR-1 parallel sweep produces byte-identical snapshots at any
//! > `--jobs` setting.
//!
//! Three design rules make that hold:
//!
//! 1. **Integer arithmetic only on merge paths.** Counters are `u64`
//!    adds; histograms bucket `u64` microseconds with `u64` counts and
//!    sums; money is accumulated in integer nano-dollars (each f64 cost
//!    is rounded once, at record time, so the sum is order-free).
//! 2. **Gauges are a max-semilattice.** A gauge keeps the value with the
//!    greatest `(sim-time, value-bits)` pair, so merging two shards
//!    yields the same "latest wins" answer in either order.
//! 3. **Snapshots are sorted.** Entries are ordered by
//!    `(subsystem, name, labels)` strings; rendering is a fold over that
//!    order, so equal snapshots render to equal bytes.
//!
//! The live [`MetricsRegistry`] is optimized for the engine hot path:
//! callers intern a metric once into a [`MetricHandle`] (a dense index)
//! and every subsequent update is a vector index plus an integer add —
//! no hashing, no allocation.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
// sky-lint: allow(D001, HashMap here backs lookup-only interning indexes; exposition paths sort - see the per-field pragmas)
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fmt::Write as _;

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `b ≥ 1`
/// holds values whose bit length is `b`, i.e. `[2^(b-1), 2^b - 1]`.
pub const LOG_BUCKETS: usize = 65;

/// Log₂-bucketed histogram over `u64` values (typically microseconds).
///
/// Recording and merging are pure integer operations, so a histogram
/// built from any interleaving or sharding of the same samples is
/// identical: merge is associative, commutative, and conserves the
/// total sample count (each sample lands in exactly one bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; LOG_BUCKETS],
        }
    }
}

/// The bucket index for a value: 0 for 0, else the bit length.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The inclusive upper edge of a bucket (`0` for bucket 0, else
/// `2^b - 1`).
pub fn bucket_upper_edge(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Record a duration as microseconds.
    #[inline]
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros());
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Fold another histogram in: element-wise integer adds.
    pub fn merge(&mut self, other: &LogHistogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
    }

    /// Nearest-rank quantile (`0 < q ≤ 1`), reported as the upper edge
    /// of the bucket containing that rank — a deterministic integer, at
    /// the cost of up-to-2× bucket resolution. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_edge(b).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty `(bucket index, count)` pairs in ascending bucket
    /// order — the serialized form used by [`HistogramSnapshot`].
    pub fn sparse_buckets(&self) -> Vec<(u8, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (b as u8, n))
            .collect()
    }
}

/// Serialized histogram state: sparse `(bucket, count)` pairs in bucket
/// order plus the scalar summaries.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Non-empty `(bucket index, count)` pairs, ascending.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Rehydrate into a dense histogram (e.g. for quantile queries).
    pub fn to_histogram(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        h.count = self.count;
        h.sum = self.sum;
        h.min = self.min;
        h.max = self.max;
        for &(b, n) in &self.buckets {
            h.buckets[b as usize] = n;
        }
        h
    }

    fn merge(&mut self, other: &HistogramSnapshot) {
        let mut dense = self.to_histogram();
        dense.merge(&other.to_histogram());
        *self = HistogramSnapshot {
            count: dense.count,
            sum: dense.sum,
            min: dense.min,
            max: dense.max,
            buckets: dense.sparse_buckets(),
        };
    }
}

/// One exported metric value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Monotone `u64` count.
    Counter(u64),
    /// Latest-wins observation: the pair with the greatest
    /// `(at_us, bits)` survives a merge.
    Gauge {
        /// Virtual time of the observation, microseconds.
        at_us: u64,
        /// Observed value.
        value: f64,
    },
    /// Log-bucketed distribution.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    fn kind_label(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge { .. } => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += *b,
            (
                MetricValue::Gauge { at_us, value },
                MetricValue::Gauge {
                    at_us: at_b,
                    value: value_b,
                },
            ) => {
                if (*at_b, value_b.to_bits()) > (*at_us, value.to_bits()) {
                    *at_us = *at_b;
                    *value = *value_b;
                }
            }
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            (a, b) => panic!(
                "metric kind mismatch on merge: {} vs {}",
                a.kind_label(),
                b.kind_label()
            ),
        }
    }
}

/// One exported metric: identity plus value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricEntry {
    /// Producing subsystem, e.g. `"faas"` or `"resilience"`.
    pub subsystem: String,
    /// Metric name within the subsystem, e.g. `"cold_starts"`.
    pub name: String,
    /// Label pairs, sorted by label name (then value).
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

type EntryKey = (String, String, Vec<(String, String)>);

impl MetricEntry {
    fn key(&self) -> EntryKey {
        (
            self.subsystem.clone(),
            self.name.clone(),
            self.labels.clone(),
        )
    }
}

/// A point-in-time, order-normalized export of a registry (or a merge
/// of many). Entries are always sorted by `(subsystem, name, labels)`,
/// which makes equality, merging and rendering deterministic.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Sorted metric entries.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sort entries into canonical order. Constructors and `merge`
    /// already leave snapshots normalized; this is for snapshots
    /// deserialized from external data.
    pub fn normalize(&mut self) {
        self.entries.sort_by_key(|e| e.key());
    }

    /// Fold `other` into `self`: same-key entries are combined
    /// (counters add, gauges keep the latest, histograms add
    /// bucket-wise), unmatched entries are inserted. Associative, and
    /// commutative on the normalized form.
    ///
    /// # Panics
    ///
    /// Panics if the same key carries different metric kinds.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        let mut map: BTreeMap<EntryKey, MetricValue> = BTreeMap::new();
        for e in self.entries.drain(..) {
            map.insert(e.key(), e.value);
        }
        for e in &other.entries {
            match map.entry(e.key()) {
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().merge(&e.value)
                }
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(e.value.clone());
                }
            }
        }
        self.entries = map
            .into_iter()
            .map(|((subsystem, name, labels), value)| MetricEntry {
                subsystem,
                name,
                labels,
                value,
            })
            .collect();
    }

    /// A copy with `(key, value)` appended to every entry's labels —
    /// how a sweep cell tags its shard (e.g. `policy="resilient"`)
    /// before the cross-cell merge.
    pub fn with_label(&self, key: &str, value: &str) -> MetricsSnapshot {
        let mut out = self.clone();
        for e in &mut out.entries {
            e.labels.push((key.to_string(), value.to_string()));
            e.labels.sort();
        }
        out.normalize();
        out
    }

    /// Entries of one subsystem.
    pub fn subsystem<'a>(&'a self, subsystem: &'a str) -> impl Iterator<Item = &'a MetricEntry> {
        self.entries
            .iter()
            .filter(move |e| e.subsystem == subsystem)
    }

    /// The counter total for an exact `(subsystem, name, labels)` key,
    /// or `None` when absent or not a counter. `labels` must be sorted.
    pub fn counter(&self, subsystem: &str, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| {
                e.subsystem == subsystem
                    && e.name == name
                    && e.labels.len() == labels.len()
                    && e.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .and_then(|e| match &e.value {
                MetricValue::Counter(n) => Some(*n),
                _ => None,
            })
    }

    /// Sum of every counter named `(subsystem, name)` across all label
    /// sets — the "any labels" rollup the report tables use.
    pub fn counter_sum(&self, subsystem: &str, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.subsystem == subsystem && e.name == name)
            .filter_map(|e| match &e.value {
                MetricValue::Counter(n) => Some(*n),
                _ => None,
            })
            .sum()
    }

    /// Render the snapshot in the Prometheus text exposition format.
    ///
    /// Metric names are `sky_<subsystem>_<name>` (sanitized), counters
    /// gain the conventional `_total` suffix, and histograms expand to
    /// cumulative `_bucket{le=…}` series plus `_sum`/`_count`. Output
    /// is a pure fold over the sorted entries: equal snapshots render
    /// to equal bytes.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_type_line: Option<String> = None;
        for e in &self.entries {
            let (full, kind) = match &e.value {
                MetricValue::Counter(_) => (
                    format!("sky_{}_{}_total", sanitize(&e.subsystem), sanitize(&e.name)),
                    "counter",
                ),
                MetricValue::Gauge { .. } => (
                    format!("sky_{}_{}", sanitize(&e.subsystem), sanitize(&e.name)),
                    "gauge",
                ),
                MetricValue::Histogram(_) => (
                    format!("sky_{}_{}", sanitize(&e.subsystem), sanitize(&e.name)),
                    "histogram",
                ),
            };
            let type_line = format!("# TYPE {full} {kind}");
            if last_type_line.as_deref() != Some(&type_line) {
                let _ = writeln!(out, "{type_line}");
                last_type_line = Some(type_line);
            }
            match &e.value {
                MetricValue::Counter(n) => {
                    let _ = writeln!(out, "{full}{} {n}", render_labels(&e.labels, None));
                }
                MetricValue::Gauge { value, .. } => {
                    let _ = writeln!(out, "{full}{} {value:?}", render_labels(&e.labels, None));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for &(b, n) in &h.buckets {
                        cumulative += n;
                        let le = bucket_upper_edge(b as usize).to_string();
                        let _ = writeln!(
                            out,
                            "{full}_bucket{} {cumulative}",
                            render_labels(&e.labels, Some(&le))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{full}_bucket{} {}",
                        render_labels(&e.labels, Some("+Inf")),
                        h.count
                    );
                    let _ = writeln!(
                        out,
                        "{full}_sum{} {}",
                        render_labels(&e.labels, None),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{full}_count{} {}",
                        render_labels(&e.labels, None),
                        h.count
                    );
                }
            }
        }
        out
    }

    /// Render the snapshot as pretty-printed JSON (deterministic: the
    /// entry order is canonical and floats use shortest-round-trip
    /// formatting).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("snapshot serializes");
        s.push('\n');
        s
    }
}

/// Prometheus-legal metric name characters.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", sanitize(k), escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.chars()
        .flat_map(|c| match c {
            '\\' => vec!['\\', '\\'],
            '"' => vec!['\\', '"'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// A registered metric: a dense index into the registry. Copyable and
/// cheap — the engine resolves handles once per platform, then every
/// hot-path update is `metrics[handle] += n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricHandle(u32);

#[derive(Debug, Clone)]
enum MetricData {
    Counter(u64),
    Gauge { at: SimTime, value: f64 },
    Histogram(LogHistogram),
}

impl MetricData {
    fn kind_label(&self) -> &'static str {
        match self {
            MetricData::Counter(_) => "counter",
            MetricData::Gauge { .. } => "gauge",
            MetricData::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MetricKey {
    subsystem: u32,
    name: u32,
    labels: Vec<(u32, u32)>,
}

/// A metric identity was re-registered as a different kind — e.g. a
/// counter looked up as a histogram. Returned by the `try_*`
/// registration methods; the panicking wrappers (`counter`, `gauge`,
/// `histogram`) turn it into a panic at the offending call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricKindMismatch {
    /// Subsystem segment of the colliding identity.
    pub subsystem: String,
    /// Name segment of the colliding identity.
    pub name: String,
    /// Kind the identity was first registered with.
    pub existing: &'static str,
    /// Kind the rejected registration asked for.
    pub requested: &'static str,
}

impl fmt::Display for MetricKindMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "metric {}/{} re-registered as a different kind: first {}, now {}",
            self.subsystem, self.name, self.existing, self.requested
        )
    }
}

impl std::error::Error for MetricKindMismatch {}

/// The live registry: interned identities, dense storage, `O(1)`
/// handle-based updates.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    strings: Vec<String>,
    // sky-lint: allow(D001, lookup-only string interner; never iterated - ids come from the insertion-ordered strings vec)
    string_ids: HashMap<String, u32>,
    metrics: Vec<(MetricKey, MetricData)>,
    // sky-lint: allow(D001, lookup-only hot-path handle index; snapshot/export iterate the dense metrics vec and sort by name)
    index: HashMap<MetricKey, MetricHandle>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.string_ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.string_ids.insert(s.to_string(), id);
        id
    }

    fn key(&mut self, subsystem: &str, name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut interned: Vec<(u32, u32)> = labels
            .iter()
            .map(|(k, v)| (self.intern(k), self.intern(v)))
            .collect();
        // Canonical in-key label order is by *string*, so the same
        // labels in any argument order (or interning history) resolve
        // to the same metric.
        interned.sort_by(|a, b| {
            (&self.strings[a.0 as usize], &self.strings[a.1 as usize])
                .cmp(&(&self.strings[b.0 as usize], &self.strings[b.1 as usize]))
        });
        MetricKey {
            subsystem: self.intern(subsystem),
            name: self.intern(name),
            labels: interned,
        }
    }

    fn register(
        &mut self,
        subsystem: &str,
        name: &str,
        labels: &[(&str, &str)],
        data: MetricData,
    ) -> Result<MetricHandle, MetricKindMismatch> {
        let key = self.key(subsystem, name, labels);
        if let Some(&h) = self.index.get(&key) {
            let existing = &self.metrics[h.0 as usize].1;
            if existing.kind_label() != data.kind_label() {
                return Err(MetricKindMismatch {
                    subsystem: subsystem.to_string(),
                    name: name.to_string(),
                    existing: existing.kind_label(),
                    requested: data.kind_label(),
                });
            }
            return Ok(h);
        }
        let h = MetricHandle(self.metrics.len() as u32);
        self.metrics.push((key.clone(), data));
        self.index.insert(key, h);
        Ok(h)
    }

    /// Register (or look up) a counter, reporting a kind collision as
    /// an error instead of panicking.
    pub fn try_counter(
        &mut self,
        subsystem: &str,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Result<MetricHandle, MetricKindMismatch> {
        self.register(subsystem, name, labels, MetricData::Counter(0))
    }

    /// Register (or look up) a gauge, reporting a kind collision as an
    /// error instead of panicking.
    pub fn try_gauge(
        &mut self,
        subsystem: &str,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Result<MetricHandle, MetricKindMismatch> {
        self.register(
            subsystem,
            name,
            labels,
            MetricData::Gauge {
                at: SimTime::ZERO,
                value: 0.0,
            },
        )
    }

    /// Register (or look up) a histogram, reporting a kind collision as
    /// an error instead of panicking.
    pub fn try_histogram(
        &mut self,
        subsystem: &str,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Result<MetricHandle, MetricKindMismatch> {
        self.register(
            subsystem,
            name,
            labels,
            MetricData::Histogram(LogHistogram::new()),
        )
    }

    /// Register (or look up) a counter.
    ///
    /// # Panics
    ///
    /// Panics if the identity is already registered as another kind;
    /// use [`MetricsRegistry::try_counter`] to handle that as an error.
    pub fn counter(
        &mut self,
        subsystem: &str,
        name: &str,
        labels: &[(&str, &str)],
    ) -> MetricHandle {
        self.try_counter(subsystem, name, labels)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Register (or look up) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if the identity is already registered as another kind;
    /// use [`MetricsRegistry::try_gauge`] to handle that as an error.
    pub fn gauge(&mut self, subsystem: &str, name: &str, labels: &[(&str, &str)]) -> MetricHandle {
        self.try_gauge(subsystem, name, labels)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Register (or look up) a histogram.
    ///
    /// # Panics
    ///
    /// Panics if the identity is already registered as another kind;
    /// use [`MetricsRegistry::try_histogram`] to handle that as an
    /// error.
    pub fn histogram(
        &mut self,
        subsystem: &str,
        name: &str,
        labels: &[(&str, &str)],
    ) -> MetricHandle {
        self.try_histogram(subsystem, name, labels)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Add to a counter.
    ///
    /// # Panics
    ///
    /// Panics if the handle is not a counter.
    #[inline]
    pub fn add(&mut self, h: MetricHandle, n: u64) {
        match &mut self.metrics[h.0 as usize].1 {
            MetricData::Counter(total) => *total += n,
            other => panic!("add() on a {}", other.kind_label()),
        }
    }

    /// Set a gauge observation; the latest `(at, bits)` pair wins, so
    /// out-of-order sets are harmless.
    #[inline]
    pub fn set_gauge(&mut self, h: MetricHandle, at: SimTime, value: f64) {
        match &mut self.metrics[h.0 as usize].1 {
            MetricData::Gauge {
                at: cur_at,
                value: cur,
            } => {
                if (at, value.to_bits()) > (*cur_at, cur.to_bits()) {
                    *cur_at = at;
                    *cur = value;
                }
            }
            other => panic!("set_gauge() on a {}", other.kind_label()),
        }
    }

    /// Record a histogram sample.
    #[inline]
    pub fn observe(&mut self, h: MetricHandle, value: u64) {
        match &mut self.metrics[h.0 as usize].1 {
            MetricData::Histogram(hist) => hist.record(value),
            other => panic!("observe() on a {}", other.kind_label()),
        }
    }

    /// Record a duration sample in microseconds.
    #[inline]
    pub fn observe_duration(&mut self, h: MetricHandle, d: SimDuration) {
        self.observe(h, d.as_micros());
    }

    /// Slow-path counter add for cold call sites (fault arming, day
    /// ticks): interns the identity on every call.
    pub fn incr(&mut self, subsystem: &str, name: &str, labels: &[(&str, &str)], n: u64) {
        let h = self.counter(subsystem, name, labels);
        self.add(h, n);
    }

    /// Direct read of a counter handle (test/report support).
    pub fn counter_value(&self, h: MetricHandle) -> u64 {
        match &self.metrics[h.0 as usize].1 {
            MetricData::Counter(n) => *n,
            other => panic!("counter_value() on a {}", other.kind_label()),
        }
    }

    /// Export the registry as a normalized snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            entries: self
                .metrics
                .iter()
                .map(|(key, data)| {
                    let mut labels: Vec<(String, String)> = key
                        .labels
                        .iter()
                        .map(|&(k, v)| {
                            (
                                self.strings[k as usize].clone(),
                                self.strings[v as usize].clone(),
                            )
                        })
                        .collect();
                    labels.sort();
                    MetricEntry {
                        subsystem: self.strings[key.subsystem as usize].clone(),
                        name: self.strings[key.name as usize].clone(),
                        labels,
                        value: match data {
                            MetricData::Counter(n) => MetricValue::Counter(*n),
                            MetricData::Gauge { at, value } => MetricValue::Gauge {
                                at_us: at.as_micros(),
                                value: *value,
                            },
                            MetricData::Histogram(h) => MetricValue::Histogram(HistogramSnapshot {
                                count: h.count,
                                sum: h.sum,
                                min: h.min,
                                max: h.max,
                                buckets: h.sparse_buckets(),
                            }),
                        },
                    }
                })
                .collect(),
        };
        snap.normalize();
        snap
    }
}

/// Request span phases: submit → route → cold/restore/warm start →
/// execute. (Billing is a counter concern; the phases here partition
/// wall-clock latency.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Time between first submission and the final attempt's dispatch:
    /// queueing, gated-retry waits, backoff.
    Route,
    /// Cold-start initialization of the final attempt.
    ColdStart,
    /// Snapshot-restore (or CoW-branch) initialization of the final
    /// attempt — the execution-mode start class between cold and warm.
    Restore,
    /// Warm dispatch overhead of the final attempt.
    WarmStart,
    /// Function execution until the client hears the response.
    Execute,
}

impl SpanPhase {
    /// Stable label for metric names.
    pub fn label(self) -> &'static str {
        match self {
            SpanPhase::Route => "route",
            SpanPhase::ColdStart => "cold_start",
            SpanPhase::Restore => "restore_start",
            SpanPhase::WarmStart => "warm_start",
            SpanPhase::Execute => "execute",
        }
    }
}

/// Per-request span lifecycle accounting with hard invariants:
///
/// * a span opens exactly once and closes exactly once;
/// * the phase durations passed at close must sum *exactly* (integer
///   microseconds) to the span's end-to-end duration;
/// * [`open_count`](Self::open_count) returning 0 is the teardown
///   contract the engine asserts after every batch.
#[derive(Debug, Clone, Default)]
pub struct SpanTracker {
    // sky-lint: allow(D001, membership map - open/close/is_open/len only; never iterated)
    open: HashMap<u64, SimTime>,
    opened_total: u64,
    closed_total: u64,
}

impl SpanTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a span.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already open.
    pub fn open(&mut self, id: u64, at: SimTime) {
        let prev = self.open.insert(id, at);
        assert!(prev.is_none(), "span {id} opened twice");
        self.opened_total += 1;
    }

    /// Whether `id` is currently open.
    pub fn is_open(&self, id: u64) -> bool {
        self.open.contains_key(&id)
    }

    /// Close a span, checking the phase-sum invariant, and return the
    /// end-to-end duration.
    ///
    /// # Panics
    ///
    /// Panics if the span is not open, closed before it opened, or the
    /// phases do not sum to the end-to-end duration.
    pub fn close(
        &mut self,
        id: u64,
        at: SimTime,
        phases: &[(SpanPhase, SimDuration)],
    ) -> SimDuration {
        let opened = self
            .open
            .remove(&id)
            .unwrap_or_else(|| panic!("span {id} closed without being open"));
        assert!(at >= opened, "span {id} closed before it opened");
        let e2e = at.saturating_since(opened);
        let phase_sum: u64 = phases.iter().map(|(_, d)| d.as_micros()).sum();
        assert_eq!(
            phase_sum,
            e2e.as_micros(),
            "span {id}: phases sum to {phase_sum}us but end-to-end is {}us",
            e2e.as_micros()
        );
        self.closed_total += 1;
        e2e
    }

    /// Spans currently open.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Spans ever opened.
    pub fn opened_total(&self) -> u64 {
        self.opened_total
    }

    /// Spans ever closed.
    pub fn closed_total(&self) -> u64 {
        self.closed_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_covers_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 0..LOG_BUCKETS {
            let edge = bucket_upper_edge(b);
            assert_eq!(bucket_index(edge), b, "upper edge of bucket {b}");
        }
    }

    #[test]
    fn histogram_records_and_conserves() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 5, 1000, 1_000_000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        let bucket_total: u64 = h.buckets.iter().sum();
        assert_eq!(bucket_total, h.count());
    }

    #[test]
    fn histogram_merge_matches_sequential() {
        let mut all = LogHistogram::new();
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        for v in 0..100u64 {
            all.record(v * 37);
            if v % 2 == 0 {
                left.record(v * 37);
            } else {
                right.record(v * 37);
            }
        }
        left.merge(&right);
        assert_eq!(left, all);
    }

    #[test]
    fn histogram_quantile_is_bucket_edge() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(1.0), Some(1000), "capped at the true max");
        let p50 = h.quantile(0.5).unwrap();
        assert!((500..=1023).contains(&p50), "p50 edge {p50}");
        assert_eq!(LogHistogram::new().quantile(0.5), None);
    }

    #[test]
    fn registry_handles_are_stable_and_typed() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("faas", "requests", &[("az", "us-east-2a")]);
        let c2 = r.counter("faas", "requests", &[("az", "us-east-2a")]);
        assert_eq!(c, c2, "same identity, same handle");
        r.add(c, 3);
        r.add(c2, 2);
        assert_eq!(r.counter_value(c), 5);
        // Label order does not create a second metric.
        let m1 = r.counter("x", "y", &[("a", "1"), ("b", "2")]);
        let m2 = r.counter("x", "y", &[("b", "2"), ("a", "1")]);
        assert_eq!(m1, m2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_collision() {
        let mut r = MetricsRegistry::new();
        r.counter("test", "kind_probe", &[]);
        // sky-lint: allow(D009, deliberate kind collision: this test pins the panicking wrapper's behaviour)
        r.histogram("test", "kind_probe", &[]);
    }

    #[test]
    fn try_register_reports_kind_mismatch_as_error() {
        let mut r = MetricsRegistry::new();
        let c = r.try_counter("test", "kind_probe", &[]).unwrap();
        assert_eq!(r.try_counter("test", "kind_probe", &[]).unwrap(), c);
        // sky-lint: allow(D009, deliberate kind collision: this test pins the error payload)
        let err = r.try_histogram("test", "kind_probe", &[]).unwrap_err();
        assert_eq!(err.subsystem, "test");
        assert_eq!(err.name, "kind_probe");
        assert_eq!(err.existing, "counter");
        assert_eq!(err.requested, "histogram");
        assert!(err
            .to_string()
            .contains("re-registered as a different kind"));
        // The failed registration must not have disturbed the registry.
        r.add(c, 2);
        assert_eq!(r.counter_value(c), 2);
    }

    #[test]
    fn gauge_keeps_latest() {
        let mut r = MetricsRegistry::new();
        let g = r.gauge("faas", "hosts", &[]);
        r.set_gauge(g, SimTime::from_micros(10), 5.0);
        r.set_gauge(g, SimTime::from_micros(5), 99.0); // stale: ignored
        let snap = r.snapshot();
        match &snap.entries[0].value {
            MetricValue::Gauge { at_us, value } => {
                assert_eq!(*at_us, 10);
                assert_eq!(*value, 5.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn snapshot_merge_is_identity_on_empty() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("a", "b", &[]);
        r.add(c, 7);
        let snap = r.snapshot();
        let mut merged = MetricsSnapshot::new();
        merged.merge(&snap);
        assert_eq!(merged, snap);
        let mut merged2 = snap.clone();
        merged2.merge(&MetricsSnapshot::new());
        assert_eq!(merged2, snap);
    }

    #[test]
    fn with_label_tags_every_entry() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("a", "b", &[("z", "1")]);
        r.add(c, 1);
        let tagged = r.snapshot().with_label("policy", "baseline");
        assert_eq!(
            tagged.entries[0].labels,
            vec![
                ("policy".to_string(), "baseline".to_string()),
                ("z".to_string(), "1".to_string())
            ]
        );
        assert_eq!(
            tagged.counter("a", "b", &[("policy", "baseline"), ("z", "1")]),
            Some(1)
        );
    }

    #[test]
    fn prometheus_text_shape() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("faas", "cold_starts", &[("az", "us-east-2a")]);
        r.add(c, 4);
        let h = r.histogram("faas", "e2e_us", &[("az", "us-east-2a")]);
        r.observe(h, 3);
        r.observe(h, 1000);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE sky_faas_cold_starts_total counter"));
        assert!(text.contains("sky_faas_cold_starts_total{az=\"us-east-2a\"} 4"));
        assert!(text.contains("sky_faas_e2e_us_bucket{az=\"us-east-2a\",le=\"3\"} 1"));
        assert!(text.contains("sky_faas_e2e_us_bucket{az=\"us-east-2a\",le=\"+Inf\"} 2"));
        assert!(text.contains("sky_faas_e2e_us_sum{az=\"us-east-2a\"} 1003"));
        assert!(text.contains("sky_faas_e2e_us_count{az=\"us-east-2a\"} 2"));
    }

    #[test]
    fn span_lifecycle_happy_path() {
        let mut s = SpanTracker::new();
        s.open(1, SimTime::from_micros(100));
        assert!(s.is_open(1));
        let e2e = s.close(
            1,
            SimTime::from_micros(160),
            &[
                (SpanPhase::Route, SimDuration::from_micros(10)),
                (SpanPhase::ColdStart, SimDuration::from_micros(20)),
                (SpanPhase::Execute, SimDuration::from_micros(30)),
            ],
        );
        assert_eq!(e2e, SimDuration::from_micros(60));
        assert_eq!(s.open_count(), 0);
        assert_eq!(s.opened_total(), 1);
        assert_eq!(s.closed_total(), 1);
    }

    #[test]
    #[should_panic(expected = "phases sum")]
    fn span_close_rejects_phase_mismatch() {
        let mut s = SpanTracker::new();
        s.open(1, SimTime::ZERO);
        s.close(
            1,
            SimTime::from_micros(100),
            &[(SpanPhase::Execute, SimDuration::from_micros(99))],
        );
    }

    #[test]
    #[should_panic(expected = "opened twice")]
    fn span_double_open_rejected() {
        let mut s = SpanTracker::new();
        s.open(1, SimTime::ZERO);
        s.open(1, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "without being open")]
    fn span_close_unopened_rejected() {
        let mut s = SpanTracker::new();
        s.close(9, SimTime::ZERO, &[]);
    }
}
