//! The interprocedural rules D008–D011, run over the [`WorkspaceModel`]
//! and its [`CallGraph`].
//!
//! | rule | invariant |
//! |------|-----------|
//! | D008 | RNG lineage: no two sibling streams derived from one parent share a label (across function boundaries), and no loop derives a loop-invariant label (every iteration would get the identical stream) |
//! | D009 | metrics contracts: each `(subsystem, name)` identity has exactly one kind workspace-wide, and handles are only touched with their registered kind's methods |
//! | D010 | span pairing: a function that opens a span must reach a `close` through the intra-crate call graph |
//! | D011 | cross-lane state: no `static mut` / interior-mutable statics / `lazy_static!` in parallel crates, and no `Arc<Mutex<_>>`/`Arc<RwLock<_>>` fields in structs reachable from `sky_faas::sharded` lane code |
//!
//! Approximation caveats (also in `DESIGN.md` §13): resolution is
//! name-based and crate-local, so D008 only propagates through calls it
//! can resolve *uniquely* (a missed edge is a missed finding, never a
//! false one) while D010 follows *every* candidate edge (an extra edge
//! can only make a `close` reachable — again erring away from false
//! positives). D009 keys on string-literal identities; dynamically
//! built metric names are invisible to it (the runtime registry check
//! remains the backstop).

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::{crate_key, CallGraph, FnId};
use crate::model::{is_simrng_ty, RecvRoot, WorkspaceModel};
use crate::rules::{Finding, SIM_CRATES};

/// Run all semantic rules; raw findings (pragma suppression happens at
/// the pipeline layer, per file).
pub fn semantic_findings(model: &WorkspaceModel) -> Vec<Finding> {
    let graph = CallGraph::build(model);
    let mut out = Vec::new();
    rule_d008_rng_lineage(model, &graph, &mut out);
    rule_d009_metric_contracts(model, &mut out);
    rule_d010_span_pairing(model, &graph, &mut out);
    rule_d011_cross_lane_state(model, &mut out);
    out
}

/// Whether a crate may run lane-parallel code (the D011 static scope).
fn parallel_scope(path: &str) -> bool {
    let k = crate_key(path);
    SIM_CRATES.contains(&k) || k == "bench"
}

// ---------------------------------------------------------------- D008

/// Labels each function derives *on its own `SimRng` parameters* —
/// directly or via calls that pass such a parameter on — keyed by
/// parameter name. This is what a caller inherits when it passes a
/// stream in: `exposed(callee)[param]` are labels the callee will
/// derive from the caller's value.
fn exposed_labels(
    model: &WorkspaceModel,
    graph: &CallGraph,
    id: FnId,
    memo: &mut BTreeMap<FnId, BTreeMap<String, BTreeSet<String>>>,
    stack: &mut Vec<FnId>,
) -> BTreeMap<String, BTreeSet<String>> {
    if let Some(m) = memo.get(&id) {
        return m.clone();
    }
    if stack.contains(&id) {
        return BTreeMap::new(); // recursion: stop the walk, stay sound
    }
    stack.push(id);
    let f = graph.func(model, id);
    let sim_params: BTreeSet<&str> = f
        .item
        .params
        .iter()
        .filter(|p| !p.name.is_empty() && is_simrng_ty(&p.ty))
        .map(|p| p.name.as_str())
        .collect();
    let mut map: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for d in &f.facts.derives {
        if let RecvRoot::Named(root) = &d.root {
            if sim_params.contains(root.as_str()) {
                map.entry(root.clone()).or_default().insert(d.label.clone());
            }
        }
    }
    for call in &f.facts.calls {
        for (ai, root) in call.args.iter().enumerate() {
            let Some(root) = root else { continue };
            if !sim_params.contains(root.as_str()) {
                continue;
            }
            let Some(callee) = graph.resolve_unambiguous(model, id, call) else {
                continue;
            };
            let g = graph.func(model, callee);
            let Some(p) = g.item.params.get(ai) else {
                continue;
            };
            if p.name.is_empty() || !is_simrng_ty(&p.ty) {
                continue;
            }
            let sub = exposed_labels(model, graph, callee, memo, stack);
            if let Some(labels) = sub.get(&p.name) {
                map.entry(root.clone()).or_default().extend(labels.clone());
            }
        }
    }
    stack.pop();
    memo.insert(id, map.clone());
    map
}

/// One label occurrence on a named root while scanning a function body.
struct LabelUse {
    line: u32,
    col: u32,
    /// Callee the label arrives through, for propagated occurrences.
    via: Option<String>,
}

fn rule_d008_rng_lineage(model: &WorkspaceModel, graph: &CallGraph, out: &mut Vec<Finding>) {
    let mut memo = BTreeMap::new();
    for (fi, file) in model.files.iter().enumerate() {
        for (ki, f) in file.fns.iter().enumerate() {
            let id: FnId = (fi, ki);

            // Loop-invariant labels: every iteration derives the
            // byte-identical stream from an untouched receiver.
            for d in &f.facts.derives {
                if d.in_loop && d.loop_invariant {
                    if let RecvRoot::Named(root) = &d.root {
                        out.push(Finding {
                            path: file.path.clone(),
                            line: d.line,
                            col: d.col,
                            rule: "D008",
                            message: format!(
                                "loop-invariant stream label {:?} derived from `{root}`: the \
                                 receiver is untouched in the loop, so every iteration gets \
                                 the byte-identical stream",
                                d.label
                            ),
                            hint: "use `derive_idx(label, index)` with the loop index, or \
                                   advance the parent stream between iterations"
                                .to_string(),
                        });
                    }
                }
            }

            // Sibling collisions: merge direct derives, propagated
            // labels from calls, and rebind resets, in source order.
            enum Ev<'a> {
                Derive(&'a crate::model::DeriveSite),
                Call(&'a crate::model::CallSite, Vec<(String, Vec<String>)>),
                Rebind(&'a crate::model::Rebind),
            }
            let mut events: Vec<(u32, u32, Ev)> = Vec::new();
            for d in &f.facts.derives {
                if matches!(d.root, RecvRoot::Named(_)) {
                    events.push((d.line, d.col, Ev::Derive(d)));
                }
            }
            for r in &f.facts.rebinds {
                events.push((r.line, r.col, Ev::Rebind(r)));
            }
            for call in &f.facts.calls {
                let mut per_root: Vec<(String, Vec<String>)> = Vec::new();
                for (ai, root) in call.args.iter().enumerate() {
                    let Some(root) = root else { continue };
                    let Some(callee) = graph.resolve_unambiguous(model, id, call) else {
                        continue;
                    };
                    let g = graph.func(model, callee);
                    let Some(p) = g.item.params.get(ai) else {
                        continue;
                    };
                    if p.name.is_empty() || !is_simrng_ty(&p.ty) {
                        continue;
                    }
                    let mut stack = Vec::new();
                    let sub = exposed_labels(model, graph, callee, &mut memo, &mut stack);
                    if let Some(labels) = sub.get(&p.name) {
                        if !labels.is_empty() {
                            per_root.push((root.clone(), labels.iter().cloned().collect()));
                        }
                    }
                }
                if !per_root.is_empty() {
                    events.push((call.line, call.col, Ev::Call(call, per_root)));
                }
            }
            events.sort_by_key(|&(line, col, _)| (line, col));

            let mut seen: BTreeMap<(String, String), LabelUse> = BTreeMap::new();
            let mut flagged: BTreeSet<(String, String)> = BTreeSet::new();
            let mut record = |seen: &mut BTreeMap<(String, String), LabelUse>,
                              root: &str,
                              label: &str,
                              u: LabelUse| {
                let key = (root.to_string(), label.to_string());
                if let Some(prev) = seen.get(&key) {
                    // Direct+direct duplicates in one body are D004's.
                    if (prev.via.is_some() || u.via.is_some()) && flagged.insert(key.clone()) {
                        let via = u
                            .via
                            .as_deref()
                            .or(prev.via.as_deref())
                            .map(|c| format!(" (via `{c}`)"))
                            .unwrap_or_default();
                        out.push(Finding {
                            path: file.path.clone(),
                            line: u.line,
                            col: u.col,
                            rule: "D008",
                            message: format!(
                                "sibling stream label {label:?} derived twice from \
                                 `{root}`{via}: identical labels from one parent alias \
                                 the same stream across functions"
                            ),
                            hint: "give sibling streams distinct labels, or derive a \
                                   child stream before passing it on"
                                .to_string(),
                        });
                    }
                } else {
                    seen.insert(key, u);
                }
            };
            for (line, col, ev) in events {
                match ev {
                    Ev::Rebind(r) => {
                        seen.retain(|(root, _), _| root != &r.name);
                    }
                    Ev::Derive(d) => {
                        if let RecvRoot::Named(root) = &d.root {
                            record(
                                &mut seen,
                                root,
                                &d.label,
                                LabelUse {
                                    line,
                                    col,
                                    via: None,
                                },
                            );
                        }
                    }
                    Ev::Call(call, per_root) => {
                        for (root, labels) in per_root {
                            for label in labels {
                                record(
                                    &mut seen,
                                    &root,
                                    &label,
                                    LabelUse {
                                        line,
                                        col,
                                        via: Some(call.callee.clone()),
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------- D009

fn rule_d009_metric_contracts(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    // Workspace identity map: (subsystem, name) → sites.
    struct Site {
        path: String,
        line: u32,
        col: u32,
        kind: &'static str,
        method: String,
    }
    let mut identities: BTreeMap<(String, String), Vec<Site>> = BTreeMap::new();
    for file in &model.files {
        for f in &file.fns {
            for r in &f.facts.metric_regs {
                let Some((sub, name)) = &r.identity else {
                    continue; // dynamic identity: runtime backstop only
                };
                identities
                    .entry((sub.clone(), name.clone()))
                    .or_default()
                    .push(Site {
                        path: file.path.clone(),
                        line: r.line,
                        col: r.col,
                        kind: r.kind,
                        method: r.method.clone(),
                    });
            }
        }
    }
    for ((sub, name), mut sites) in identities {
        sites.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
        let canonical = &sites[0];
        if sites.iter().all(|s| s.kind == canonical.kind) {
            continue;
        }
        let (ck, cp, cl) = (canonical.kind, canonical.path.clone(), canonical.line);
        for s in &sites {
            if s.kind != ck {
                out.push(Finding {
                    path: s.path.clone(),
                    line: s.line,
                    col: s.col,
                    rule: "D009",
                    message: format!(
                        "metric {sub}/{name} used as a {} (`{}`) but first registered \
                         as a {ck} at {cp}:{cl}",
                        s.kind, s.method
                    ),
                    hint: "a metric identity has exactly one kind workspace-wide; rename \
                           one of the metrics or align the kinds (the registry panics on \
                           this at runtime)"
                        .to_string(),
                });
            }
        }
    }

    // Handle-kind contracts: a handle bound at registration must only
    // be touched with its kind's methods.
    for file in &model.files {
        // File-level targets (struct-literal fields, `self.x = …`)
        // usable across fns — only when the kind is unambiguous.
        let mut file_targets: BTreeMap<String, Option<&'static str>> = BTreeMap::new();
        for f in &file.fns {
            for r in &f.facts.metric_regs {
                if let Some(t) = &r.target {
                    file_targets
                        .entry(t.clone())
                        .and_modify(|k| {
                            if *k != Some(r.kind) {
                                *k = None; // conflicting kinds: unusable
                            }
                        })
                        .or_insert(Some(r.kind));
                }
            }
        }
        for f in &file.fns {
            // Replay registrations and touches in source order: a touch
            // resolves against the *latest* same-named binding before
            // it, so shadowed `let h = …` bindings (one per match arm)
            // don't cross-contaminate.
            enum Ev<'a> {
                Reg(&'a crate::model::MetricReg),
                Touch(&'a crate::model::MetricTouch),
            }
            let mut events: Vec<(u32, u32, Ev)> = Vec::new();
            for r in &f.facts.metric_regs {
                if r.target.is_some() {
                    events.push((r.line, r.col, Ev::Reg(r)));
                }
            }
            for t in &f.facts.metric_touches {
                events.push((t.line, t.col, Ev::Touch(t)));
            }
            events.sort_by_key(|&(line, col, _)| (line, col));
            let mut fn_targets: BTreeMap<&str, &'static str> = BTreeMap::new();
            for (_, _, ev) in events {
                let t = match ev {
                    Ev::Reg(r) => {
                        if let Some(target) = &r.target {
                            fn_targets.insert(target.as_str(), r.kind);
                        }
                        continue;
                    }
                    Ev::Touch(t) => t,
                };
                let registered = fn_targets
                    .get(t.target.as_str())
                    .copied()
                    .or_else(|| file_targets.get(&t.target).copied().flatten());
                if let Some(reg_kind) = registered {
                    if reg_kind != t.kind {
                        out.push(Finding {
                            path: file.path.clone(),
                            line: t.line,
                            col: t.col,
                            rule: "D009",
                            message: format!(
                                "handle `{}` is registered as a {reg_kind} but `{}` \
                                 treats it as a {}",
                                t.target, t.method, t.kind
                            ),
                            hint: "touch the handle with its registered kind's method \
                                   (`add` ↔ counter, `set_gauge` ↔ gauge, `observe` ↔ \
                                   histogram)"
                                .to_string(),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------- D010

fn rule_d010_span_pairing(model: &WorkspaceModel, graph: &CallGraph, out: &mut Vec<Finding>) {
    for (fi, file) in model.files.iter().enumerate() {
        for (ki, f) in file.fns.iter().enumerate() {
            if f.facts.span_opens.is_empty() {
                continue;
            }
            let closes_reachable = graph
                .reachable(model, (fi, ki))
                .into_iter()
                .any(|id| graph.func(model, id).facts.span_closes > 0);
            if closes_reachable {
                continue;
            }
            for &(line, col) in &f.facts.span_opens {
                out.push(Finding {
                    path: file.path.clone(),
                    line,
                    col,
                    rule: "D010",
                    message: format!(
                        "span opened in `{}` with no reachable `close` on any \
                         intra-crate call path",
                        f.item.name
                    ),
                    hint: "every opened span must be closed on every path (phases must \
                           sum to the end-to-end time); close it here or in a callee"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- D011

/// Interior-mutability type tokens that make a static lane-unsafe.
fn interior_mut_token(ty: &str) -> Option<&str> {
    ty.split(' ')
        .find(|t| matches!(*t, "Mutex" | "RwLock" | "RefCell" | "Cell") || t.starts_with("Atomic"))
}

fn rule_d011_cross_lane_state(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    // Statics and lazy_static in any parallel-capable crate.
    for file in &model.files {
        if !parallel_scope(&file.path) {
            continue;
        }
        for s in &file.statics {
            if s.is_mut {
                out.push(Finding {
                    path: file.path.clone(),
                    line: s.line,
                    col: s.col,
                    rule: "D011",
                    message: format!(
                        "`static mut {}` in a parallel-capable crate: writes race \
                         across sharded lanes and thread scheduling orders them",
                        s.name
                    ),
                    hint: "thread the state through the lane's own struct (one owner \
                           per lane), merged deterministically at the barrier"
                        .to_string(),
                });
            } else if let Some(tok) = interior_mut_token(&s.ty) {
                out.push(Finding {
                    path: file.path.clone(),
                    line: s.line,
                    col: s.col,
                    rule: "D011",
                    message: format!(
                        "static `{}` has interior mutability (`{tok}`): shared mutable \
                         state whose update order depends on thread scheduling",
                        s.name
                    ),
                    hint: "give each lane its own state and merge in lane order at the \
                           barrier; globals may only hold immutable data"
                        .to_string(),
                });
            }
        }
        for m in &file.macro_uses {
            if m.name == "lazy_static" {
                out.push(Finding {
                    path: file.path.clone(),
                    line: m.line,
                    col: m.col,
                    rule: "D011",
                    message: "`lazy_static!` global in a parallel-capable crate: \
                              initialization order and any interior mutability are \
                              scheduling-dependent"
                        .to_string(),
                    hint: "use a `const`, a plain immutable `static`, or per-lane \
                           owned state"
                        .to_string(),
                });
            }
        }
    }

    // Arc<Mutex<_>> / Arc<RwLock<_>> fields in structs reachable from
    // sharded lane code.
    let lane_file = |path: &str| path.starts_with("crates/faas/") && path.contains("sharded");
    let mut struct_defs: BTreeMap<&str, Vec<(&str, &crate::parser::StructItem)>> = BTreeMap::new();
    for file in &model.files {
        for s in &file.structs {
            struct_defs
                .entry(s.name.as_str())
                .or_default()
                .push((file.path.as_str(), s));
        }
    }
    let mut reachable: BTreeSet<&str> = BTreeSet::new();
    let mut frontier: Vec<&str> = Vec::new();
    for file in &model.files {
        if !lane_file(&file.path) {
            continue;
        }
        for r in &file.type_refs {
            if struct_defs.contains_key(r.as_str()) && reachable.insert(r.as_str()) {
                frontier.push(r.as_str());
            }
        }
    }
    while let Some(name) = frontier.pop() {
        let mut next: Vec<&str> = Vec::new();
        for (_, s) in struct_defs.get(name).into_iter().flatten() {
            for field in &s.fields {
                for tok in field.ty.split(' ') {
                    if struct_defs.contains_key(tok) && reachable.insert(tok) {
                        next.push(tok);
                    }
                }
            }
        }
        frontier.extend(next);
    }
    for name in &reachable {
        for (path, s) in struct_defs.get(name).into_iter().flatten() {
            for field in &s.fields {
                let toks: Vec<&str> = field.ty.split(' ').collect();
                let shared = toks.contains(&"Arc");
                let locked = toks.contains(&"Mutex") || toks.contains(&"RwLock");
                if shared && locked {
                    out.push(Finding {
                        path: path.to_string(),
                        line: field.line,
                        col: field.col,
                        rule: "D011",
                        message: format!(
                            "field `{}.{}` is shared lockable state (`{}`) reachable \
                             from sharded lane code: lock acquisition order is \
                             scheduling-dependent",
                            s.name, field.name, field.ty
                        ),
                        hint: "lanes must own their state; merge results in lane index \
                               order at the reduction barrier instead of sharing a \
                               locked collection"
                            .to_string(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{extract_source, WorkspaceModel};

    fn lint(files: &[(&str, &str)]) -> Vec<Finding> {
        let model =
            WorkspaceModel::from_files(files.iter().map(|(p, s)| extract_source(p, s)).collect());
        semantic_findings(&model)
    }

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d008_cross_function_sibling_collision() {
        let f = lint(&[(
            "crates/faas/src/a.rs",
            "fn spawn_churn(rng: &mut SimRng) { let c = rng.derive(\"churn\"); }\n\
             fn configure(rng: &mut SimRng) {\n\
                 let mine = rng.derive(\"churn\");\n\
                 spawn_churn(rng);\n\
             }",
        )]);
        assert_eq!(rules(&f), ["D008"]);
        assert!(f[0].message.contains("churn"));
        assert!(f[0].message.contains("spawn_churn"));
    }

    #[test]
    fn d008_cross_file_collision_within_crate() {
        let f = lint(&[
            (
                "crates/faas/src/a.rs",
                "fn configure(rng: &mut SimRng) { let c = rng.derive(\"faults\"); helper(rng); }",
            ),
            (
                "crates/faas/src/b.rs",
                "fn helper(r: &mut SimRng) { let x = r.derive(\"faults\"); }",
            ),
        ]);
        assert_eq!(rules(&f), ["D008"]);
    }

    #[test]
    fn d008_distinct_labels_and_rebinding_are_clean() {
        let f = lint(&[(
            "crates/faas/src/a.rs",
            "fn helper(r: &mut SimRng) { let x = r.derive(\"x\"); }\n\
             fn f(base: &mut SimRng) {\n\
                 let rng = base.derive(\"a\");\n\
                 helper(&mut rng);\n\
                 let rng = base.derive(\"b\");\n\
                 helper(&mut rng);\n\
             }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d008_same_fn_direct_duplicates_are_left_to_d004() {
        let f = lint(&[(
            "crates/faas/src/a.rs",
            "fn f(rng: &mut SimRng) { let a = rng.derive(\"x\"); let b = rng.derive(\"x\"); }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d008_loop_invariant_label() {
        let f = lint(&[(
            "crates/faas/src/a.rs",
            "fn f(rng: &mut SimRng) { for h in 0..4 { sink(rng.derive(\"host\")); } }",
        )]);
        assert_eq!(rules(&f), ["D008"]);
        assert!(f[0].message.contains("loop-invariant"));
    }

    #[test]
    fn d009_workspace_kind_conflict() {
        let f = lint(&[
            (
                "crates/faas/src/a.rs",
                "fn f(m: &mut R) { let c = m.counter(\"faas\", \"requests\", &l); }",
            ),
            (
                "crates/sim-core/src/b.rs",
                "fn g(m: &mut R) { let h = m.histogram(\"faas\", \"requests\", &l); }",
            ),
        ]);
        assert_eq!(rules(&f), ["D009"]);
        assert!(f[0].path.contains("sim-core"));
        assert!(f[0].message.contains("first registered as a counter"));
    }

    #[test]
    fn d009_handle_touch_mismatch() {
        let f = lint(&[(
            "crates/faas/src/a.rs",
            "fn f(m: &mut R) { let depth = m.gauge(\"q\", \"depth\", &l); m.add(depth, 1); }",
        )]);
        assert_eq!(rules(&f), ["D009"]);
        assert!(f[0].message.contains("`add` treats it as a counter"));
    }

    #[test]
    fn d009_consistent_kinds_are_clean() {
        let f = lint(&[(
            "crates/faas/src/a.rs",
            "fn f(m: &mut R) { let c = m.counter(\"faas\", \"hits\", &l); m.add(c, 1); \
             m.incr(\"faas\", \"hits\", &l, 1); }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d010_unclosed_span_and_closed_via_callee() {
        let dirty = lint(&[(
            "crates/faas/src/a.rs",
            "fn handle(&mut self) { self.spans.open(1, 2); self.route(); }\n\
             fn route(&mut self) {}",
        )]);
        assert_eq!(rules(&dirty), ["D010"]);
        let clean = lint(&[(
            "crates/faas/src/a.rs",
            "fn handle(&mut self) { self.spans.open(1, 2); self.finish(); }\n\
             fn finish(&mut self) { self.spans.close(1, 2, p); }",
        )]);
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn d011_static_mut_and_lazy_static() {
        let f = lint(&[(
            "crates/faas/src/sharded/lane.rs",
            "static mut TICKS: u64 = 0;\n\
             lazy_static! { static ref M: u8 = 1; }\n\
             static NAMES: [&str; 2] = [\"a\", \"b\"];",
        )]);
        assert_eq!(rules(&f), ["D011", "D011"]);
    }

    #[test]
    fn d011_shared_locked_field_reachable_from_lane() {
        let f = lint(&[
            (
                "crates/faas/src/sharded/lane.rs",
                "fn run(s: &LaneShared) { drive(s); }",
            ),
            (
                "crates/sim-core/src/state.rs",
                "pub struct LaneShared { pub outcomes: Arc<Mutex<Vec<u64>>>, pub n: u64 }",
            ),
        ]);
        assert_eq!(rules(&f), ["D011"]);
        assert!(f[0].path.contains("sim-core"));
        assert!(f[0].message.contains("LaneShared.outcomes"));
    }

    #[test]
    fn d011_owned_state_is_clean() {
        let f = lint(&[
            (
                "crates/faas/src/sharded/lane.rs",
                "fn run(s: &mut LaneState) {}",
            ),
            (
                "crates/sim-core/src/state.rs",
                "pub struct LaneState { pub outcomes: Vec<u64> }",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d011_interior_mutable_static_outside_parallel_scope_is_fine() {
        let f = lint(&[(
            "crates/cli/src/main.rs",
            "static CACHE: Mutex<Vec<u64>> = Mutex::new(Vec::new());",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
