//! `// sky-lint:` pragma parsing and suppression bookkeeping.
//!
//! Grammar (one directive per comment):
//!
//! ```text
//! // sky-lint: allow(D001, <non-empty reason>)        line scope
//! // sky-lint: allow-file(D001, <non-empty reason>)   whole-file scope
//! ```
//!
//! A line-scoped pragma suppresses findings of its rule on its own line
//! and — when the comment stands alone on its line — on the next line,
//! so annotations can sit above the code they justify. The reason is
//! mandatory: an allow that does not say *why* the site is safe is
//! itself a finding ([`PragmaError::MissingReason`] → rule `P001`), and
//! an allow that suppresses nothing is dead weight (`P002`), so the
//! annotation layer can never silently rot.
//!
//! Pragmas are only recognised in plain `//` comments; doc comments
//! (`///`, `//!`) may *mention* the syntax without activating it.

use crate::lexer::LineComment;
use crate::rules::RULE_IDS;

/// A parsed, well-formed allow pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// The rule this pragma suppresses (e.g. `"D001"`).
    pub rule: String,
    /// Mandatory human justification.
    pub reason: String,
    /// 1-based line of the pragma comment.
    pub line: u32,
    /// Whether the pragma covers the whole file (`allow-file`).
    pub file_scope: bool,
    /// Whether the comment stands alone on its line (covers line+1).
    pub standalone: bool,
    /// Set when the pragma suppressed at least one finding.
    pub used: bool,
}

/// A malformed pragma (always a `P001` finding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PragmaError {
    /// Not `allow(...)` / `allow-file(...)`.
    BadDirective {
        /// 1-based line.
        line: u32,
        /// The offending directive text.
        directive: String,
    },
    /// Rule id is not one of D001–D007.
    UnknownRule {
        /// 1-based line.
        line: u32,
        /// The offending rule id.
        rule: String,
    },
    /// `allow(D00x)` with no (or an empty) reason.
    MissingReason {
        /// 1-based line.
        line: u32,
        /// The rule whose allow lacked a reason.
        rule: String,
    },
}

impl PragmaError {
    /// 1-based source line of the malformed pragma.
    pub fn line(&self) -> u32 {
        match self {
            PragmaError::BadDirective { line, .. }
            | PragmaError::UnknownRule { line, .. }
            | PragmaError::MissingReason { line, .. } => *line,
        }
    }

    /// Human message for the `P001` finding.
    pub fn message(&self) -> String {
        match self {
            PragmaError::BadDirective { directive, .. } => format!(
                "malformed sky-lint pragma: expected `allow(RULE, reason)` or \
                 `allow-file(RULE, reason)`, got `{directive}`"
            ),
            PragmaError::UnknownRule { rule, .. } => {
                format!("sky-lint pragma names unknown rule `{rule}`")
            }
            PragmaError::MissingReason { rule, .. } => format!(
                "sky-lint allow({rule}) without a reason: every suppression \
                 must say why the site is deterministic"
            ),
        }
    }
}

/// Scan line comments for `sky-lint:` pragmas. Well-formed pragmas land
/// in the first vector, malformed ones in the second.
pub fn parse_pragmas(comments: &[LineComment]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for comment in comments {
        // `///` and `//!` doc comments are documentation, not directives.
        if comment.text.starts_with('/') || comment.text.starts_with('!') {
            continue;
        }
        let text = comment.text.trim();
        let Some(rest) = text.strip_prefix("sky-lint:") else {
            continue;
        };
        match parse_directive(rest.trim(), comment.line) {
            Ok((rule, reason, file_scope)) => pragmas.push(Pragma {
                rule,
                reason,
                line: comment.line,
                file_scope,
                standalone: comment.standalone,
                used: false,
            }),
            Err(e) => errors.push(e),
        }
    }
    (pragmas, errors)
}

fn parse_directive(rest: &str, line: u32) -> Result<(String, String, bool), PragmaError> {
    let (head, file_scope) = if let Some(h) = rest.strip_prefix("allow-file") {
        (h, true)
    } else if let Some(h) = rest.strip_prefix("allow") {
        (h, false)
    } else {
        return Err(PragmaError::BadDirective {
            line,
            directive: rest.to_string(),
        });
    };
    let head = head.trim();
    let Some(inner) = head.strip_prefix('(').and_then(|h| h.strip_suffix(')')) else {
        return Err(PragmaError::BadDirective {
            line,
            directive: rest.to_string(),
        });
    };
    let (rule, reason) = match inner.split_once(',') {
        Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
        None => (inner.trim().to_string(), String::new()),
    };
    if !RULE_IDS.contains(&rule.as_str()) {
        return Err(PragmaError::UnknownRule { line, rule });
    }
    if reason.is_empty() {
        return Err(PragmaError::MissingReason { line, rule });
    }
    Ok((rule, reason, file_scope))
}

/// Whether a finding of `rule` at `line` is suppressed by `pragmas`;
/// marks the matching pragma used.
pub fn suppresses(pragmas: &mut [Pragma], rule: &str, line: u32) -> bool {
    for p in pragmas.iter_mut() {
        if p.rule != rule {
            continue;
        }
        let hit = p.file_scope || p.line == line || (p.standalone && p.line + 1 == line);
        if hit {
            p.used = true;
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<Pragma>, Vec<PragmaError>) {
        parse_pragmas(&lex(src).comments)
    }

    #[test]
    fn well_formed_pragma_parses() {
        let (ps, es) = parse("// sky-lint: allow(D001, lookup-only interning map)\n");
        assert!(es.is_empty());
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].rule, "D001");
        assert_eq!(ps[0].reason, "lookup-only interning map");
        assert!(!ps[0].file_scope);
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let (ps, es) = parse("// sky-lint: allow(D003)\n");
        assert!(ps.is_empty());
        assert_eq!(es.len(), 1);
        assert!(matches!(es[0], PragmaError::MissingReason { .. }));
    }

    #[test]
    fn whitespace_only_reason_is_rejected() {
        let (_, es) = parse("// sky-lint: allow(D002,    )\n");
        assert_eq!(es.len(), 1);
        assert!(matches!(es[0], PragmaError::MissingReason { .. }));
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let (_, es) = parse("// sky-lint: allow(D999, whatever)\n");
        assert!(matches!(es[0], PragmaError::UnknownRule { .. }));
    }

    #[test]
    fn bad_directive_is_rejected() {
        let (_, es) = parse("// sky-lint: disable(D001, nope)\n");
        assert!(matches!(es[0], PragmaError::BadDirective { .. }));
    }

    #[test]
    fn doc_comments_do_not_activate_pragmas() {
        let (ps, es) = parse("/// sky-lint: allow(D001)\n//! sky-lint: allow(D001)\n");
        assert!(ps.is_empty() && es.is_empty());
    }

    #[test]
    fn standalone_pragma_covers_next_line() {
        let (mut ps, _) = parse("// sky-lint: allow(D001, next line is safe)\n");
        assert!(suppresses(&mut ps, "D001", 2));
        assert!(!suppresses(&mut ps, "D001", 3));
        assert!(ps[0].used);
    }

    #[test]
    fn trailing_pragma_covers_only_its_line() {
        let (mut ps, _) = parse("let x = 1; // sky-lint: allow(D005, fold is ordered)\n");
        assert!(suppresses(&mut ps, "D005", 1));
        assert!(!suppresses(&mut ps, "D005", 2));
    }

    #[test]
    fn file_pragma_covers_everything() {
        let (mut ps, _) = parse("// sky-lint: allow-file(D004, test corpus)\n");
        assert!(suppresses(&mut ps, "D004", 999));
    }
}
