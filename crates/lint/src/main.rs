//! `sky-lint` binary — the CI determinism gate.
//!
//! ```text
//! sky-lint [--root PATH] [--format human|json] [--jobs N]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error. Output
//! is sorted by `(path, line, col, rule)` and paths are workspace-
//! relative with `/` separators, so the bytes are identical across
//! machines, filesystems, discovery orders — and `--jobs` settings
//! (the parallel per-file phase merges in file order).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(message) => {
            eprintln!("sky-lint: error: {message}");
            eprintln!("usage: sky-lint [--root PATH] [--format human|json] [--jobs N]");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut format = "human".to_string();
    let mut jobs = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg, None),
        };
        let mut value = |name: &str| -> Result<String, String> {
            match inline.clone().or_else(|| args.next()) {
                Some(v) => Ok(v),
                None => Err(format!("{name} requires a value")),
            }
        };
        match flag.as_str() {
            "--root" => root = Some(PathBuf::from(value("--root")?)),
            "--format" => format = value("--format")?,
            "--jobs" => {
                jobs = value("--jobs")?
                    .parse::<usize>()
                    .map_err(|_| "--jobs must be a positive integer".to_string())?
                    .max(1)
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if format != "human" && format != "json" {
        return Err(format!(
            "--format must be `human` or `json`, got {format:?}"
        ));
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            sky_lint::find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory")?
        }
    };
    let findings = sky_lint::lint_workspace_with_jobs(&root, jobs).map_err(|e| e.to_string())?;
    let rendered = match format.as_str() {
        "json" => sky_lint::render_json(&findings),
        _ => sky_lint::render_human(&findings),
    };
    print!("{rendered}");
    Ok(findings.is_empty())
}
