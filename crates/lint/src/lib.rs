//! `sky-lint` — the determinism static-analysis pass.
//!
//! Every figure this repository reproduces rests on byte-identical
//! seeded replay. The golden-trace harness (`tests/golden/`) catches a
//! run that *has drifted*; this crate catches the *line that would make
//! it drift* — at CI time, before a nondeterministic collection, a
//! wall-clock read, an ambient RNG, an aliased stream label or an
//! unsorted exporter ever reaches a golden.
//!
//! Two analysis layers share one pipeline:
//!
//! * **token rules** (D001–D007, [`rules`]) — per-file, resolvable on
//!   the raw token stream;
//! * **semantic rules** (D008–D011, [`semantic`]) — interprocedural,
//!   run over a [`model::WorkspaceModel`] built by a lightweight
//!   item-level parser ([`parser`]) with an intra-crate call graph
//!   ([`graph`]).
//!
//! Three entry points ship the same pass:
//!
//! * the `sky-lint` binary (`--format human|json`, `--jobs N`, stable
//!   sorted output, exit 1 on findings) — the CI gate;
//! * the `skyward lint` CLI subcommand (plus `--fix-pragmas`);
//! * this library API ([`lint_source`], [`lint_workspace`],
//!   [`lint_workspace_with_jobs`]) — what the fixture golden tests
//!   drive.
//!
//! Rules are documented on [`rules`] and [`semantic`]; suppression
//! syntax on [`pragma`]. Output is sorted by `(path, line, col, rule)`
//! and the per-file phase is order-independent, so reports are
//! byte-identical across file discovery order *and* `--jobs`.

pub mod graph;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod pragma;
pub mod rules;
pub mod semantic;

pub use pragma::{Pragma, PragmaError};
pub use rules::{Finding, RULE_IDS, SIM_CRATES, WALLCLOCK_ALLOWLIST};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use model::{FileModel, WorkspaceModel};

/// Directory names never scanned, at any depth: build output, VCS
/// metadata, and the vendored third-party stand-ins (not ours to lint).
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "results"];

/// The linter's own test corpus: deliberately dirty code that must not
/// fail the workspace gate.
const SKIP_PREFIXES: [&str; 1] = ["crates/lint/fixtures"];

/// Walk `root` for `.rs` files, returning workspace-relative paths with
/// `/` separators, sorted — so every downstream consumer sees the same
/// order regardless of filesystem readdir order.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            let rel = rel_path(root, &path);
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_path(root, &path));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// One file after the per-file (parallelizable) phase: raw token
/// findings, parsed pragmas, and the extracted semantic model.
struct Prepped {
    path: String,
    pragmas: Vec<Pragma>,
    pragma_errors: Vec<PragmaError>,
    raw: Vec<Finding>,
    model: FileModel,
}

/// The per-file phase: lex, token rules, parse, fact extraction. Pure
/// per file — safe to run files in any order or in parallel.
fn prepare(rel_path: &str, source: &str) -> Prepped {
    let lexed = lexer::lex(source);
    let (pragmas, pragma_errors) = pragma::parse_pragmas(&lexed.comments);
    let raw = rules::token_findings(rel_path, &lexed);
    let ast = parser::parse_file(&lexed);
    let model = model::extract_file(rel_path, &lexed, &ast);
    Prepped {
        path: rel_path.to_string(),
        pragmas,
        pragma_errors,
        raw,
        model,
    }
}

/// The serial phase: assemble the workspace model, run the semantic
/// rules, then apply pragma suppression and hygiene per file.
fn finish(mut files: Vec<Prepped>) -> Vec<Finding> {
    files.sort_by(|a, b| a.path.cmp(&b.path));
    let ws = WorkspaceModel::from_files(files.iter().map(|p| p.model.clone()).collect());
    let mut semantic = semantic::semantic_findings(&ws);

    let mut findings = Vec::new();
    for p in &mut files {
        let mut raw = std::mem::take(&mut p.raw);
        raw.extend(
            semantic
                .extract_if(.., |f| f.path == p.path)
                .collect::<Vec<_>>(),
        );
        findings.extend(
            raw.into_iter()
                .filter(|f| !pragma::suppresses(&mut p.pragmas, f.rule, f.line)),
        );
        for e in &p.pragma_errors {
            findings.push(Finding {
                path: p.path.clone(),
                line: e.line(),
                col: 1,
                rule: "P001",
                message: e.message(),
                hint: "write `// sky-lint: allow(D00x, <reason>)` with a non-empty reason"
                    .to_string(),
            });
        }
        for pr in &p.pragmas {
            if !pr.used {
                findings.push(Finding {
                    path: p.path.clone(),
                    line: pr.line,
                    col: 1,
                    rule: "P002",
                    message: format!(
                        "unused sky-lint pragma: allow({}) suppresses nothing on its line",
                        pr.rule
                    ),
                    hint: "delete the stale pragma (or move it next to the site it justifies)"
                        .to_string(),
                });
            }
        }
    }
    sort_findings(&mut findings);
    findings
}

/// Lint one file's source through the full pipeline (token + semantic
/// rules + pragmas). `rel_path` must be workspace-relative with `/`
/// separators — it selects which rules apply. Interprocedural effects
/// are naturally limited to this one file; cross-file analysis needs
/// [`lint_workspace`].
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    finish(vec![prepare(rel_path, source)])
}

/// Lint every `.rs` file under `root`. Findings come back sorted by
/// `(path, line, col, rule)` — stable across discovery order.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    lint_workspace_with_jobs(root, 1)
}

/// [`lint_workspace`] with the per-file phase fanned out over `jobs`
/// threads. The file list is split into contiguous chunks, each worker
/// fills its own pre-allocated slot, and chunks are merged in file
/// order — so the output is byte-identical to `jobs = 1`.
pub fn lint_workspace_with_jobs(root: &Path, jobs: usize) -> io::Result<Vec<Finding>> {
    let files = collect_workspace_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        sources.push((rel.as_str(), fs::read_to_string(root.join(rel))?));
    }
    let jobs = jobs.clamp(1, sources.len().max(1));
    let prepped: Vec<Prepped> = if jobs <= 1 {
        sources.iter().map(|(p, s)| prepare(p, s)).collect()
    } else {
        let chunk = sources.len().div_ceil(jobs);
        let mut slots: Vec<Vec<Prepped>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = sources
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(|(p, s)| prepare(p, s)).collect()))
                .collect();
            // Join in spawn (= file) order: the merge is deterministic
            // whatever order the workers finish in.
            for h in handles {
                slots.push(h.join().unwrap_or_default());
            }
        });
        slots.into_iter().flatten().collect()
    };
    Ok(finish(prepped))
}

/// Canonical finding order: path, then position, then rule.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule, &a.message)
            .cmp(&(&b.path, b.line, b.col, b.rule, &b.message))
    });
}

/// Ascend from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// One planned removal of an unused (`P002`) pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaFix {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line to rewrite.
    pub line: u32,
    /// The current line content.
    pub old: String,
    /// Replacement: `None` deletes the whole line (standalone pragma
    /// comment), `Some` keeps the code and strips the trailing pragma.
    pub new: Option<String>,
}

/// Plan machine-applicable fixes for every unused-pragma (`P002`)
/// finding under `root`: standalone pragma lines are deleted, trailing
/// pragmas are stripped from their code line.
pub fn plan_pragma_fixes(root: &Path) -> io::Result<Vec<PragmaFix>> {
    let findings = lint_workspace(root)?;
    let mut fixes = Vec::new();
    for f in findings.iter().filter(|f| f.rule == "P002") {
        let source = fs::read_to_string(root.join(&f.path))?;
        let Some(content) = source.lines().nth(f.line as usize - 1) else {
            continue;
        };
        let Some(at) = content.find("//") else {
            continue;
        };
        let before = &content[..at];
        let new = if before.trim().is_empty() {
            None
        } else {
            Some(before.trim_end().to_string())
        };
        fixes.push(PragmaFix {
            path: f.path.clone(),
            line: f.line,
            old: content.to_string(),
            new,
        });
    }
    Ok(fixes)
}

/// Render planned pragma fixes as a unified-style diff.
pub fn render_pragma_fixes(fixes: &[PragmaFix]) -> String {
    let mut out = String::new();
    let mut last_path = "";
    for f in fixes {
        if f.path != last_path {
            out.push_str(&format!("--- {}\n+++ {}\n", f.path, f.path));
            last_path = &f.path;
        }
        out.push_str(&format!("@@ line {} @@\n-{}\n", f.line, f.old));
        if let Some(new) = &f.new {
            out.push_str(&format!("+{new}\n"));
        }
    }
    if fixes.is_empty() {
        out.push_str("sky-lint: no unused pragmas to fix\n");
    } else {
        out.push_str(&format!(
            "sky-lint: {} unused pragma{} to remove\n",
            fixes.len(),
            if fixes.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Apply planned pragma fixes to the files under `root`. Lines are
/// rewritten bottom-up per file so earlier fixes never shift later
/// line numbers. Returns the number of files changed.
pub fn apply_pragma_fixes(root: &Path, fixes: &[PragmaFix]) -> io::Result<usize> {
    let mut by_file: Vec<(&str, Vec<&PragmaFix>)> = Vec::new();
    for f in fixes {
        match by_file.iter_mut().find(|(p, _)| *p == f.path) {
            Some((_, v)) => v.push(f),
            None => by_file.push((&f.path, vec![f])),
        }
    }
    for (path, file_fixes) in &mut by_file {
        let path: &str = path;
        let source = fs::read_to_string(root.join(path))?;
        let mut lines: Vec<String> = source.lines().map(|l| l.to_string()).collect();
        file_fixes.sort_by_key(|f| std::cmp::Reverse(f.line));
        for f in file_fixes.iter() {
            let idx = f.line as usize - 1;
            if lines.get(idx).map(|l| l.as_str()) != Some(f.old.as_str()) {
                continue; // file changed underneath the plan; skip
            }
            match &f.new {
                Some(new) => lines[idx] = new.clone(),
                None => {
                    lines.remove(idx);
                }
            }
        }
        let mut rebuilt = lines.join("\n");
        if source.ends_with('\n') {
            rebuilt.push('\n');
        }
        fs::write(root.join(path), rebuilt)?;
    }
    Ok(by_file.len())
}

/// Render findings as human-readable text (one finding per pair of
/// lines, then a summary line).
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{}: {} {}\n    hint: {}\n",
            f.path, f.line, f.col, f.rule, f.message, f.hint
        ));
    }
    if findings.is_empty() {
        out.push_str("sky-lint: clean (no determinism findings)\n");
    } else {
        out.push_str(&format!(
            "sky-lint: {} finding{}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Render findings as stable JSON: findings in canonical order, then a
/// per-rule summary sorted by rule id. Hand-rolled so the byte output
/// is fully under this crate's control (the golden tests diff it).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \
             \"message\": {}, \"hint\": {}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            f.col,
            json_str(&f.message),
            json_str(&f.hint)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"summary\": {");
    let mut rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    rules.sort();
    rules.dedup();
    for (i, rule) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let n = findings.iter().filter(|f| f.rule == *rule).count();
        out.push_str(&format!("\n    {}: {}", json_str(rule), n));
    }
    if !rules.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("}},\n  \"total\": {}\n}}\n", findings.len()));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_str("\u{0001}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_findings_render_cleanly() {
        assert!(render_human(&[]).contains("clean"));
        let json = render_json(&[]);
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"total\": 0"));
    }

    #[test]
    fn workspace_root_is_discoverable_from_here() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&here).expect("workspace root");
        assert!(root.join("crates/lint").is_dir());
    }

    #[test]
    fn semantic_findings_are_suppressible_by_pragma() {
        let dirty = lint_source(
            "crates/faas/src/x.rs",
            "fn f(rng: &mut SimRng) { for h in 0..2 { sink(rng.derive(\"h\")); } }",
        );
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].rule, "D008");
        let clean = lint_source(
            "crates/faas/src/x.rs",
            "fn f(rng: &mut SimRng) {\n\
                 // sky-lint: allow(D008, the loop intentionally replays one stream)\n\
                 for h in 0..2 { sink(rng.derive(\"h\")); }\n\
             }",
        );
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn pragma_fix_rendering_and_shapes() {
        let fixes = vec![
            PragmaFix {
                path: "crates/faas/src/a.rs".into(),
                line: 3,
                old: "// sky-lint: allow(D001, stale)".into(),
                new: None,
            },
            PragmaFix {
                path: "crates/faas/src/a.rs".into(),
                line: 9,
                old: "let x = 1; // sky-lint: allow(D005, stale)".into(),
                new: Some("let x = 1;".into()),
            },
        ];
        let diff = render_pragma_fixes(&fixes);
        assert!(diff.contains("-// sky-lint: allow(D001, stale)"));
        assert!(diff.contains("+let x = 1;"));
        assert!(diff.contains("2 unused pragmas"));
        assert!(render_pragma_fixes(&[]).contains("no unused pragmas"));
    }
}
