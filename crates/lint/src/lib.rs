//! `sky-lint` — the determinism static-analysis pass.
//!
//! Every figure this repository reproduces rests on byte-identical
//! seeded replay. The golden-trace harness (`tests/golden/`) catches a
//! run that *has drifted*; this crate catches the *line that would make
//! it drift* — at CI time, before a nondeterministic collection, a
//! wall-clock read, an ambient RNG, an aliased stream label or an
//! unsorted exporter ever reaches a golden.
//!
//! Three entry points ship the same pass:
//!
//! * the `sky-lint` binary (`--format human|json`, stable sorted
//!   output, exit 1 on findings) — the CI gate;
//! * the `skyward lint` CLI subcommand;
//! * this library API ([`lint_source`], [`lint_workspace`]) — what the
//!   fixture golden tests drive.
//!
//! Rules are documented on [`rules`]; suppression syntax on [`pragma`].

pub mod lexer;
pub mod pragma;
pub mod rules;

pub use pragma::{Pragma, PragmaError};
pub use rules::{lint_source, Finding, RULE_IDS, SIM_CRATES, WALLCLOCK_ALLOWLIST};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never scanned, at any depth: build output, VCS
/// metadata, and the vendored third-party stand-ins (not ours to lint).
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "results"];

/// The linter's own test corpus: deliberately dirty code that must not
/// fail the workspace gate.
const SKIP_PREFIXES: [&str; 1] = ["crates/lint/fixtures"];

/// Walk `root` for `.rs` files, returning workspace-relative paths with
/// `/` separators, sorted — so every downstream consumer sees the same
/// order regardless of filesystem readdir order.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            let rel = rel_path(root, &path);
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_path(root, &path));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lint every `.rs` file under `root`. Findings come back sorted by
/// `(path, line, col, rule)` — stable across discovery order.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let files = collect_workspace_files(root)?;
    let mut findings = Vec::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        findings.extend(lint_source(rel, &source));
    }
    sort_findings(&mut findings);
    Ok(findings)
}

/// Canonical finding order: path, then position, then rule.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule, &a.message)
            .cmp(&(&b.path, b.line, b.col, b.rule, &b.message))
    });
}

/// Ascend from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Render findings as human-readable text (one finding per pair of
/// lines, then a summary line).
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{}: {} {}\n    hint: {}\n",
            f.path, f.line, f.col, f.rule, f.message, f.hint
        ));
    }
    if findings.is_empty() {
        out.push_str("sky-lint: clean (no determinism findings)\n");
    } else {
        out.push_str(&format!(
            "sky-lint: {} finding{}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Render findings as stable JSON: findings in canonical order, then a
/// per-rule summary sorted by rule id. Hand-rolled so the byte output
/// is fully under this crate's control (the golden tests diff it).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \
             \"message\": {}, \"hint\": {}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            f.col,
            json_str(&f.message),
            json_str(&f.hint)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"summary\": {");
    let mut rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    rules.sort();
    rules.dedup();
    for (i, rule) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let n = findings.iter().filter(|f| f.rule == *rule).count();
        out.push_str(&format!("\n    {}: {}", json_str(rule), n));
    }
    if !rules.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("}},\n  \"total\": {}\n}}\n", findings.len()));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_str("\u{0001}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_findings_render_cleanly() {
        assert!(render_human(&[]).contains("clean"));
        let json = render_json(&[]);
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"total\": 0"));
    }

    #[test]
    fn workspace_root_is_discoverable_from_here() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&here).expect("workspace root");
        assert!(root.join("crates/lint").is_dir());
    }
}
