//! A token-level Rust lexer: exactly the fidelity the determinism rules
//! need, and nothing more.
//!
//! The lexer's one job is to make the rule pass *trustworthy*: rules
//! must never fire on text inside comments, strings, char literals or
//! doc examples, and must see string-literal *contents* (for `derive`
//! stream labels) and line comments (for `// sky-lint:` pragmas) as
//! first-class items. Everything else — numbers, lifetimes, punctuation
//! — is consumed precisely but carried opaquely.
//!
//! Handled: line and (nested) block comments, string literals with
//! escapes, raw strings `r#"…"#` at any hash depth, byte and raw-byte
//! strings, char literals vs. lifetimes, raw identifiers `r#type`,
//! numeric literals (including `0..n` ranges and float exponents).

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// String literal (contents, escapes left raw).
    Str(String),
    /// Char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Numeric literal.
    Num,
    /// Single punctuation character.
    Punct(char),
}

/// A token plus its source position (1-based line, 1-based column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// A `//` line comment (text after the slashes, untrimmed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// Comment text after the leading `//`.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Whether the comment is the first non-whitespace on its line
    /// (standalone pragmas also cover the following line).
    pub standalone: bool,
}

/// Full lexer output: the token stream plus every line comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order.
    pub comments: Vec<LineComment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into tokens and line comments. The lexer never fails: any
/// byte it does not recognise becomes a `Punct`, and unterminated
/// strings or comments simply end at EOF — good enough for analysis,
/// since the compiler is the arbiter of validity.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    let mut line_had_token = false;
    let mut last_line = 1u32;

    while let Some(b) = c.peek() {
        if c.line != last_line {
            line_had_token = false;
            last_line = c.line;
        }
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                c.bump();
                c.bump();
                let mut text = String::new();
                while let Some(nb) = c.peek() {
                    if nb == b'\n' {
                        break;
                    }
                    text.push(c.bump().unwrap() as char);
                }
                out.comments.push(LineComment {
                    text,
                    line,
                    standalone: !line_had_token,
                });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            c.bump();
                            c.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            c.bump();
                            c.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'"' => {
                c.bump();
                let s = lex_string_body(&mut c);
                out.tokens.push(Token {
                    tok: Tok::Str(s),
                    line,
                    col,
                });
                line_had_token = true;
            }
            b'\'' => {
                // Lifetime iff `'` + ident run not closed by another `'`.
                let mut k = 1usize;
                let lifetime = match c.peek_at(1) {
                    Some(nb) if is_ident_start(nb) => {
                        k += 1;
                        while c.peek_at(k).is_some_and(is_ident_continue) {
                            k += 1;
                        }
                        c.peek_at(k) != Some(b'\'')
                    }
                    _ => false,
                };
                if lifetime {
                    for _ in 0..k {
                        c.bump();
                    }
                    out.tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                        col,
                    });
                } else {
                    c.bump();
                    // Char literal: consume escapes up to the closing quote.
                    while let Some(nb) = c.peek() {
                        if nb == b'\\' {
                            c.bump();
                            c.bump();
                        } else if nb == b'\'' {
                            c.bump();
                            break;
                        } else {
                            c.bump();
                        }
                    }
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line,
                        col,
                    });
                }
                line_had_token = true;
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut c);
                out.tokens.push(Token {
                    tok: Tok::Num,
                    line,
                    col,
                });
                line_had_token = true;
            }
            _ if is_ident_start(b) => {
                // Raw strings (r"...", r#"..."#, br#"..."#) and byte
                // strings (b"...") start with what looks like an ident.
                if let Some(s) = try_lex_raw_or_byte_string(&mut c) {
                    out.tokens.push(Token {
                        tok: Tok::Str(s),
                        line,
                        col,
                    });
                    line_had_token = true;
                    continue;
                }
                let mut name = String::new();
                // Raw identifier `r#type`.
                if b == b'r'
                    && c.peek_at(1) == Some(b'#')
                    && c.peek_at(2).is_some_and(is_ident_start)
                {
                    c.bump();
                    c.bump();
                }
                while c.peek().is_some_and(is_ident_continue) {
                    name.push(c.bump().unwrap() as char);
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(name),
                    line,
                    col,
                });
                line_had_token = true;
            }
            _ => {
                c.bump();
                out.tokens.push(Token {
                    tok: Tok::Punct(b as char),
                    line,
                    col,
                });
                line_had_token = true;
            }
        }
    }
    out
}

/// Consume a (non-raw) string body after the opening quote; returns the
/// contents with escapes left raw.
fn lex_string_body(c: &mut Cursor<'_>) -> String {
    let mut s = String::new();
    while let Some(b) = c.peek() {
        match b {
            b'\\' => {
                s.push(c.bump().unwrap() as char);
                if let Some(e) = c.bump() {
                    s.push(e as char);
                }
            }
            b'"' => {
                c.bump();
                break;
            }
            _ => s.push(c.bump().unwrap() as char),
        }
    }
    s
}

/// Try to lex `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` at the cursor.
/// Returns the contents, or `None` when the cursor is not at one.
fn try_lex_raw_or_byte_string(c: &mut Cursor<'_>) -> Option<String> {
    let mut k = 0usize;
    match c.peek()? {
        b'b' => {
            k += 1;
            if c.peek_at(k) == Some(b'r') {
                k += 1;
            }
        }
        b'r' => k += 1,
        _ => return None,
    }
    let raw = k > 1 || c.peek() == Some(b'r');
    let mut hashes = 0usize;
    if raw {
        while c.peek_at(k) == Some(b'#') {
            k += 1;
            hashes += 1;
        }
    }
    if c.peek_at(k) != Some(b'"') {
        return None;
    }
    // Commit: consume prefix, hashes and the opening quote.
    for _ in 0..=k {
        c.bump();
    }
    let mut s = String::new();
    if !raw {
        return Some(lex_string_body(c));
    }
    // Raw string: ends at `"` followed by `hashes` hash marks.
    while let Some(b) = c.peek() {
        if b == b'"' {
            let closed = (1..=hashes).all(|i| c.peek_at(i) == Some(b'#'));
            if closed {
                for _ in 0..=hashes {
                    c.bump();
                }
                return Some(s);
            }
        }
        s.push(c.bump().unwrap() as char);
    }
    Some(s)
}

/// Consume a numeric literal (integer, float, hex/oct/bin, suffixed),
/// stopping before `..` so ranges lex as two puncts.
fn lex_number(c: &mut Cursor<'_>) {
    while c
        .peek()
        .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
    {
        c.bump();
    }
    if c.peek() == Some(b'.') && c.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
        c.bump();
        while c
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            c.bump();
        }
    }
    // Exponent sign (`1e-9`): the alphanumeric run above stops at `-`.
    if c.peek() == Some(b'-') || c.peek() == Some(b'+') {
        let prev = c.src.get(c.pos.wrapping_sub(1)).copied();
        if matches!(prev, Some(b'e') | Some(b'E')) {
            c.bump();
            while c.peek().is_some_and(|b| b.is_ascii_digit()) {
                c.bump();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" here"#;
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"BTreeMap".to_string()));
    }

    #[test]
    fn string_contents_are_captured() {
        let toks = lex(r#"rng.derive("day-tick")"#).tokens;
        assert!(toks
            .iter()
            .any(|t| t.tok == Tok::Str("day-tick".to_string())));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(ids, ["fn", "f", "x", "str", "str", "x"]);
    }

    #[test]
    fn char_literals_do_not_eat_code() {
        let ids = idents("let c = 'x'; let esc = '\\''; after");
        assert!(ids.contains(&"after".to_string()));
    }

    #[test]
    fn line_comments_are_collected_with_position() {
        let out = lex("let x = 1; // sky-lint: allow(D001, because)\n// standalone\n");
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].line, 1);
        assert!(!out.comments[0].standalone);
        assert!(out.comments[1].standalone);
        assert!(out.comments[0].text.contains("sky-lint"));
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let out = lex("ab\n  cd");
        assert_eq!((out.tokens[0].line, out.tokens[0].col), (1, 1));
        assert_eq!((out.tokens[1].line, out.tokens[1].col), (2, 3));
    }

    #[test]
    fn ranges_lex_as_two_puncts() {
        let toks = lex("for i in 0..10 {}").tokens;
        let dots = toks.iter().filter(|t| t.tok == Tok::Punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn float_exponents_consume_sign() {
        let toks = lex("let x = 1.5e-9; done").tokens;
        assert!(toks.iter().any(|t| t.tok == Tok::Ident("done".into())));
        assert!(!toks.iter().any(|t| t.tok == Tok::Punct('-')));
    }
}
