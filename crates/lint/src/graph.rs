//! Intra-crate call graph over the [`WorkspaceModel`].
//!
//! Resolution is name-based and deliberately crate-local: the rules
//! that consume the graph (D008 lineage propagation, D010 span-pairing
//! reachability) are about invariants *within* a subsystem, and
//! cross-crate name resolution without type inference would be guesswork.
//!
//! Two resolution modes, matched to how each rule can fail:
//!
//! * [`CallGraph::resolve_unambiguous`] — a single candidate or
//!   nothing. Used by D008, where connecting a call to the *wrong*
//!   callee would invent a collision (false positive).
//! * [`CallGraph::resolve_all`] — every plausible candidate. Used by
//!   D010 reachability, where extra edges can only make more `close`
//!   sites reachable (fewer false positives).

use std::collections::BTreeMap;

use crate::model::{CallSite, FnModel, WorkspaceModel};

/// Identifies one function: `(file index, fn index)` into the model.
pub type FnId = (usize, usize);

/// The crate grouping key for a path: the crate name under `crates/`,
/// otherwise the first path segment (`tests`, `xtask`, …).
pub fn crate_key(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .or_else(|| path.split('/').next())
        .unwrap_or(path)
}

/// Per-crate symbol index + call-site resolver.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `(crate, fn name)` → fn ids, in model (path, index) order.
    by_name: BTreeMap<(String, String), Vec<FnId>>,
    /// `(crate, container, fn name)` → fn ids.
    by_container: BTreeMap<(String, String, String), Vec<FnId>>,
}

impl CallGraph {
    /// Index every function in the model.
    pub fn build(model: &WorkspaceModel) -> Self {
        let mut g = CallGraph::default();
        for (fi, file) in model.files.iter().enumerate() {
            let krate = crate_key(&file.path).to_string();
            for (ki, f) in file.fns.iter().enumerate() {
                let id = (fi, ki);
                g.by_name
                    .entry((krate.clone(), f.item.name.clone()))
                    .or_default()
                    .push(id);
                if let Some(c) = &f.item.container {
                    g.by_container
                        .entry((krate.clone(), c.clone(), f.item.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }
        g
    }

    /// The function a `FnId` points at.
    pub fn func<'m>(&self, model: &'m WorkspaceModel, id: FnId) -> &'m FnModel {
        &model.files[id.0].fns[id.1]
    }

    /// Every plausible callee for `call` made from `caller`.
    pub fn resolve_all(&self, model: &WorkspaceModel, caller: FnId, call: &CallSite) -> Vec<FnId> {
        let krate = crate_key(&model.files[caller.0].path).to_string();
        // `Self::helper(…)` resolves against the caller's own impl type.
        let qualifier = call.qualifier.as_deref().map(|q| {
            if q == "Self" {
                self.func(model, caller)
                    .item
                    .container
                    .clone()
                    .unwrap_or_else(|| q.to_string())
            } else {
                q.to_string()
            }
        });
        match qualifier {
            Some(q) => self
                .by_container
                .get(&(krate, q, call.callee.clone()))
                .cloned()
                .unwrap_or_default(),
            None => {
                let all = self
                    .by_name
                    .get(&(krate, call.callee.clone()))
                    .cloned()
                    .unwrap_or_default();
                if call.method {
                    // Method syntax prefers impl'd fns; fall back to
                    // any same-named fn (the parser may have missed the
                    // impl container in unusual layouts).
                    let methods: Vec<FnId> = all
                        .iter()
                        .copied()
                        .filter(|&id| self.func(model, id).item.container.is_some())
                        .collect();
                    if methods.is_empty() {
                        all
                    } else {
                        methods
                    }
                } else {
                    // Plain calls prefer free fns; fall back to any
                    // (`use Type::assoc` imports are rare but legal).
                    let free: Vec<FnId> = all
                        .iter()
                        .copied()
                        .filter(|&id| self.func(model, id).item.container.is_none())
                        .collect();
                    if free.is_empty() {
                        all
                    } else {
                        free
                    }
                }
            }
        }
    }

    /// The unique callee, or `None` when resolution is ambiguous.
    pub fn resolve_unambiguous(
        &self,
        model: &WorkspaceModel,
        caller: FnId,
        call: &CallSite,
    ) -> Option<FnId> {
        let c = self.resolve_all(model, caller, call);
        match c.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }

    /// Deterministic BFS over `resolve_all` edges, including `from`.
    pub fn reachable(&self, model: &WorkspaceModel, from: FnId) -> Vec<FnId> {
        let mut seen: Vec<FnId> = vec![from];
        let mut queue: Vec<FnId> = vec![from];
        while let Some(id) = queue.pop() {
            for call in &self.func(model, id).facts.calls {
                for next in self.resolve_all(model, id, call) {
                    if !seen.contains(&next) {
                        seen.push(next);
                        queue.push(next);
                    }
                }
            }
        }
        seen.sort_unstable();
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{extract_source, WorkspaceModel};

    fn model(files: &[(&str, &str)]) -> WorkspaceModel {
        WorkspaceModel::from_files(files.iter().map(|(p, s)| extract_source(p, s)).collect())
    }

    #[test]
    fn free_fn_resolution_is_crate_local() {
        let m = model(&[
            (
                "crates/faas/src/a.rs",
                "fn caller() { helper(); } fn helper() {}",
            ),
            ("crates/core/src/b.rs", "fn helper() {}"),
        ]);
        // Model files are sorted by path: core is file 0, faas file 1.
        let g = CallGraph::build(&m);
        let caller = (1, 0);
        let call = &g.func(&m, caller).facts.calls[0];
        assert_eq!(g.resolve_all(&m, caller, call), vec![(1, 1)]);
    }

    #[test]
    fn qualified_calls_resolve_by_container() {
        let m = model(&[(
            "crates/faas/src/a.rs",
            "impl Az { fn new() {} } impl Host { fn new() {} } fn f() { Az::new(); }",
        )]);
        let g = CallGraph::build(&m);
        let f = (0, 2);
        let call = &g.func(&m, f).facts.calls[0];
        assert_eq!(g.resolve_unambiguous(&m, f, call), Some((0, 0)));
    }

    #[test]
    fn ambiguous_methods_resolve_to_none_but_all_candidates() {
        let m = model(&[(
            "crates/faas/src/a.rs",
            "impl A { fn go(&self) {} } impl B { fn go(&self) {} } fn f(x: A) { x.go(); }",
        )]);
        let g = CallGraph::build(&m);
        let f = (0, 2);
        let call = &g.func(&m, f).facts.calls[0];
        assert_eq!(g.resolve_unambiguous(&m, f, call), None);
        assert_eq!(g.resolve_all(&m, f, call).len(), 2);
    }

    #[test]
    fn reachability_follows_chains_and_handles_cycles() {
        let m = model(&[(
            "crates/faas/src/a.rs",
            "fn a() { b(); } fn b() { c(); a(); } fn c() {} fn lone() {}",
        )]);
        let g = CallGraph::build(&m);
        assert_eq!(g.reachable(&m, (0, 0)), vec![(0, 0), (0, 1), (0, 2)]);
        assert_eq!(g.reachable(&m, (0, 3)), vec![(0, 3)]);
    }
}
