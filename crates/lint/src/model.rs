//! The [`WorkspaceModel`]: per-function *facts* extracted from parsed
//! files, the substrate the interprocedural rules (D008–D011) run on.
//!
//! Facts are extracted once per file — derive sites with their receiver
//! roots and loop context, call sites with argument roots, metric
//! registration/touch sites, span open/close sites, rebindings — and
//! the token stream is then dropped. Everything downstream (the call
//! graph, the semantic rules) works on this compact model, which keeps
//! whole-workspace analysis cheap and, because the model is sorted by
//! path at construction, byte-stable across file discovery order.

use crate::lexer::{Lexed, Tok, Token};
use crate::parser::{FileAst, FnItem, MacroUse, StaticItem, StructItem};

/// The whole-workspace model: one [`FileModel`] per file, sorted by
/// workspace-relative path.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceModel {
    /// Files sorted by `path` (construction order does not matter).
    pub files: Vec<FileModel>,
}

impl WorkspaceModel {
    /// Assemble a model from per-file extractions, in any order.
    pub fn from_files(mut files: Vec<FileModel>) -> Self {
        files.sort_by(|a, b| a.path.cmp(&b.path));
        WorkspaceModel { files }
    }
}

/// One file's contribution to the model.
#[derive(Debug, Clone)]
pub struct FileModel {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Struct definitions (for D011 reachability).
    pub structs: Vec<StructItem>,
    /// `static` items (for D011).
    pub statics: Vec<StaticItem>,
    /// Macro invocations (for D011 `lazy_static!`).
    pub macro_uses: Vec<MacroUse>,
    /// Functions with their extracted facts, in source order.
    pub fns: Vec<FnModel>,
    /// Sorted, deduplicated uppercase-initial identifiers mentioned
    /// anywhere in the file — the D011 type-reference seed set.
    pub type_refs: Vec<String>,
}

/// One function: its parsed item plus the facts the rules consume.
#[derive(Debug, Clone)]
pub struct FnModel {
    /// The parsed signature (name, container, params, position).
    pub item: FnItem,
    /// Extracted body facts (empty for bodyless signatures).
    pub facts: FnFacts,
}

/// Everything the semantic rules need to know about one function body.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// `.derive("literal")` sites (indexed `derive_idx` is the
    /// sanctioned loop pattern and is deliberately *not* recorded).
    pub derives: Vec<DeriveSite>,
    /// Call sites, in source order.
    pub calls: Vec<CallSite>,
    /// Metric registration / identity-use sites with two string-literal
    /// identity arguments.
    pub metric_regs: Vec<MetricReg>,
    /// Handle-based metric touches (`add`/`set_gauge`/`observe`…).
    pub metric_touches: Vec<MetricTouch>,
    /// `.open(…)` calls on a span-ish receiver.
    pub span_opens: Vec<(u32, u32)>,
    /// Number of `.close(…)` calls on a span-ish receiver.
    pub span_closes: u32,
    /// Rebindings (`let name = …`, `name = …`, `self.name = …`), in
    /// source order — they reset D008's per-root label tracking.
    pub rebinds: Vec<Rebind>,
}

/// The root of a method-call receiver chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvRoot {
    /// A plain ident or `self.`-field chain (`rng`, `self.rng`).
    Named(String),
    /// The chain passes through a call or index — a fresh value with no
    /// nameable identity (`SimRng::seed_from(s).derive(…)`).
    Fresh,
}

/// One `.derive("label")` site.
#[derive(Debug, Clone)]
pub struct DeriveSite {
    /// The string-literal stream label.
    pub label: String,
    /// 1-based line of the `derive` ident.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Receiver-chain root.
    pub root: RecvRoot,
    /// Inside a `for`/`while`/`loop` body.
    pub in_loop: bool,
    /// In a loop *and* the receiver chain is never mentioned in the
    /// innermost loop other than to derive — so every iteration derives
    /// the byte-identical stream.
    pub loop_invariant: bool,
}

/// One call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment / method name).
    pub callee: String,
    /// Path segment before `::` for qualified calls (`AzPlatform::new`).
    pub qualifier: Option<String>,
    /// `.name(…)` method-call syntax.
    pub method: bool,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Per-argument receiver root: `Some(chain)` when the argument is a
    /// bare (possibly `&`/`mut`-prefixed) ident or `self.`-field chain.
    pub args: Vec<Option<String>>,
}

/// A metric registration or identity-use site: any call to a method
/// that implies a metric kind.
#[derive(Debug, Clone)]
pub struct MetricReg {
    /// Implied kind: `counter`, `gauge` or `histogram`.
    pub kind: &'static str,
    /// The method called (`counter`, `try_histogram`, `incr`, …).
    pub method: String,
    /// `(subsystem, name)` when both identity args are string literals
    /// (only such sites join the workspace identity-kind check;
    /// dynamically built identities stay a runtime concern).
    pub identity: Option<(String, String)>,
    /// 1-based line of the method ident.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Binding the returned handle lands in, when the site is
    /// `let t = …` / `t: …` (struct literal) / `self.t = …` —
    /// tracked whether or not the identity args are literals.
    pub target: Option<String>,
}

/// A handle-based metric touch (`reg.add(handle, n)` and friends).
#[derive(Debug, Clone)]
pub struct MetricTouch {
    /// Kind the touch method implies.
    pub kind: &'static str,
    /// The method called (`add`, `set_gauge`, `observe`, …).
    pub method: String,
    /// Last segment of the first-argument chain — the handle name.
    pub target: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A rebinding event: the named chain now refers to a new value.
#[derive(Debug, Clone)]
pub struct Rebind {
    /// The rebound chain (`rng`, `self.rng`).
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Methods that carry a metric identity as two leading string literals,
/// with the kind each implies.
const METRIC_IDENTITY_METHODS: [(&str, &str); 8] = [
    ("counter", "counter"),
    ("try_counter", "counter"),
    ("incr", "counter"),
    ("counter_sum", "counter"),
    ("gauge", "gauge"),
    ("try_gauge", "gauge"),
    ("histogram", "histogram"),
    ("try_histogram", "histogram"),
];

/// Handle-based touch methods and the kind each demands.
const METRIC_TOUCH_METHODS: [(&str, &str); 4] = [
    ("add", "counter"),
    ("set_gauge", "gauge"),
    ("observe", "histogram"),
    ("observe_duration", "histogram"),
];

fn punct(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

fn ident(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn str_lit(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Extract one file's model from its lexed tokens and parsed AST.
pub fn extract_file(path: &str, lexed: &Lexed, ast: &FileAst) -> FileModel {
    let toks = &lexed.tokens;
    let bodies: Vec<(usize, usize)> = ast.fns.iter().filter_map(|f| f.body).collect();
    let fns = ast
        .fns
        .iter()
        .map(|f| FnModel {
            item: f.clone(),
            facts: match f.body {
                Some((s, e)) => extract_facts(toks, s, e, &bodies),
                None => FnFacts::default(),
            },
        })
        .collect();
    let mut type_refs: Vec<String> = toks
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(s) if s.starts_with(|c: char| c.is_ascii_uppercase()) => Some(s.clone()),
            _ => None,
        })
        .collect();
    type_refs.sort();
    type_refs.dedup();
    FileModel {
        path: path.to_string(),
        structs: ast.structs.clone(),
        statics: ast.statics.clone(),
        macro_uses: ast.macro_uses.clone(),
        fns,
        type_refs,
    }
}

/// Whether token index `i` inside the body `[start, end)` belongs to a
/// *nested* fn's body (facts there are the nested fn's, not ours).
fn in_nested_body(i: usize, start: usize, bodies: &[(usize, usize)]) -> bool {
    bodies.iter().any(|&(s, e)| s > start && i >= s && i < e)
}

/// Walk back from the `.` before a method name, collecting the receiver
/// chain. Returns the chain root plus the token index of the chain head.
fn receiver_chain(toks: &[Token], dot: usize) -> (RecvRoot, usize) {
    let mut segs: Vec<String> = Vec::new();
    let mut j = dot;
    loop {
        if j == 0 {
            break;
        }
        j -= 1; // token before the current `.`
        match &toks[j].tok {
            Tok::Ident(s) => {
                segs.push(s.clone());
                if j >= 1 && punct(toks, j - 1) == Some('.') {
                    j -= 1; // continue through the chain
                    continue;
                }
                if j >= 2 && punct(toks, j - 1) == Some(':') && punct(toks, j - 2) == Some(':') {
                    // Path-rooted receiver (`Foo::BAR.derive(…)`): no
                    // nameable local identity.
                    return (RecvRoot::Fresh, j);
                }
                segs.reverse();
                return (RecvRoot::Named(segs.join(".")), j);
            }
            _ => break, // `)`, `]`, literals: a fresh value
        }
    }
    (RecvRoot::Fresh, dot)
}

/// Parse the chain in an argument slice: `[&][mut] a.b.c` → `Some("a.b.c")`.
fn arg_root(arg: &[Token]) -> Option<String> {
    let mut s = 0usize;
    while matches!(punct(arg, s), Some('&')) || ident(arg, s) == Some("mut") {
        s += 1;
    }
    let mut segs = Vec::new();
    let mut j = s;
    loop {
        segs.push(ident(arg, j)?.to_string());
        j += 1;
        match punct(arg, j) {
            Some('.') => j += 1,
            None if j == arg.len() => return Some(segs.join(".")),
            _ => return None,
        }
    }
}

/// Split a top-level argument list (commas outside nested groups).
fn split_args(toks: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = open + 1;
    for j in open + 1..close {
        match punct(toks, j) {
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => depth -= 1,
            Some(',') if depth == 0 => {
                out.push((start, j));
                start = j + 1;
            }
            _ => {}
        }
    }
    if start < close {
        out.push((start, close));
    }
    out
}

fn find_close_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match punct(toks, j) {
            Some('(') => depth += 1,
            Some(')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

const CALL_KEYWORDS: [&str; 10] = [
    "if", "for", "while", "match", "return", "loop", "fn", "struct", "Some", "Ok",
];

/// Loop regions within a body: `(kw_idx, open_idx, close_idx)`.
fn loop_ranges(
    toks: &[Token],
    start: usize,
    end: usize,
    bodies: &[(usize, usize)],
) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        if in_nested_body(i, start, bodies) {
            i += 1;
            continue;
        }
        if matches!(ident(toks, i), Some("for") | Some("while") | Some("loop")) {
            // Scan the header (skipping nested groups) to the body `{`.
            let mut j = i + 1;
            while j < end {
                match punct(toks, j) {
                    Some('(') | Some('[') => j = find_matching_any(toks, j),
                    Some('{') => break,
                    Some(';') => break, // not a loop header after all
                    _ => {}
                }
                j += 1;
            }
            if punct(toks, j) == Some('{') {
                let close = find_matching_any(toks, j);
                out.push((i, j, close));
            }
        }
        i += 1;
    }
    out
}

fn find_matching_any(toks: &[Token], i: usize) -> usize {
    let (open, close) = match punct(toks, i) {
        Some('(') => ('(', ')'),
        Some('[') => ('[', ']'),
        Some('{') => ('{', '}'),
        _ => return i,
    };
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match punct(toks, j) {
            Some(c) if c == open => depth += 1,
            Some(c) if c == close => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Whether the token sequence for `chain` (idents joined by `.`) occurs
/// at `toks[at..]`, not preceded by `.` (so `self.rng` does not match a
/// bare `rng` chain).
fn chain_matches(toks: &[Token], at: usize, segs: &[&str]) -> Option<usize> {
    if at > 0 && punct(toks, at - 1) == Some('.') {
        return None;
    }
    let mut j = at;
    for (k, seg) in segs.iter().enumerate() {
        if ident(toks, j) != Some(seg) {
            return None;
        }
        j += 1;
        if k + 1 < segs.len() {
            if punct(toks, j) != Some('.') {
                return None;
            }
            j += 1;
        }
    }
    Some(j) // index just past the chain
}

/// Extract the facts for one fn body `[start, end)`.
fn extract_facts(toks: &[Token], start: usize, end: usize, bodies: &[(usize, usize)]) -> FnFacts {
    let mut facts = FnFacts::default();
    let loops = loop_ranges(toks, start, end, bodies);
    let mut i = start;
    while i < end {
        if in_nested_body(i, start, bodies) {
            i += 1;
            continue;
        }
        let Tok::Ident(name) = &toks[i].tok else {
            // Rebind via plain assignment is keyed on the ident, handled
            // below; nothing else to do for puncts/literals.
            i += 1;
            continue;
        };
        let dotted = i > 0 && punct(toks, i - 1) == Some('.');
        let called = punct(toks, i + 1) == Some('(');

        // Rebinds: `[let] [mut] name = …` / `self.name = …` all reduce
        // to a chain directly followed by a single `=` (the binding
        // ident after `let`/`mut` is scanned like any other).
        if !dotted && !called && is_plain_assign(toks, i) {
            let (chain, _) = read_chain(toks, i);
            facts.rebinds.push(Rebind {
                name: chain,
                line: toks[i].line,
                col: toks[i].col,
            });
        }

        if dotted && called && name == "derive" {
            if let Some(label) = str_lit(toks, i + 2) {
                let (root, _head) = receiver_chain(toks, i - 1);
                let innermost = loops
                    .iter()
                    .filter(|&&(_, open, close)| i > open && i < close)
                    .max_by_key(|&&(_, open, _)| open);
                let (in_loop, loop_invariant) = match (&root, innermost) {
                    (RecvRoot::Named(chain), Some(&(kw, _, close))) => {
                        (true, receiver_only_derives(toks, kw, close, chain))
                    }
                    (_, Some(_)) => (true, false),
                    _ => (false, false),
                };
                facts.derives.push(DeriveSite {
                    label: label.to_string(),
                    line: toks[i].line,
                    col: toks[i].col,
                    root,
                    in_loop,
                    loop_invariant,
                });
            }
        }

        if dotted && called {
            if let Some(&(_, kind)) = METRIC_IDENTITY_METHODS.iter().find(|(m, _)| m == name) {
                let (_, head) = receiver_chain(toks, i - 1);
                facts.metric_regs.push(MetricReg {
                    kind,
                    method: name.clone(),
                    identity: identity_literals(toks, i + 1),
                    line: toks[i].line,
                    col: toks[i].col,
                    target: binding_target(toks, head),
                });
            }
            if let Some(&(_, kind)) = METRIC_TOUCH_METHODS.iter().find(|(m, _)| m == name) {
                let close = find_close_paren(toks, i + 1);
                if let Some(&(a, b)) = split_args(toks, i + 1, close).first() {
                    if let Some(chain) = arg_root(&toks[a..b]) {
                        let target = chain.rsplit('.').next().unwrap_or(&chain).to_string();
                        facts.metric_touches.push(MetricTouch {
                            kind,
                            method: name.clone(),
                            target,
                            line: toks[i].line,
                            col: toks[i].col,
                        });
                    }
                }
            }
            if name == "open" || name == "close" {
                let (root, _) = receiver_chain(toks, i - 1);
                if let RecvRoot::Named(chain) = &root {
                    if chain
                        .split('.')
                        .any(|seg| seg.to_ascii_lowercase().contains("span"))
                    {
                        if name == "open" {
                            facts.span_opens.push((toks[i].line, toks[i].col));
                        } else {
                            facts.span_closes += 1;
                        }
                    }
                }
            }
        }

        // Call sites (named calls only; macro `name!(…)` has a `!`
        // between the ident and paren so it never matches here).
        if called && !CALL_KEYWORDS.contains(&name.as_str()) {
            let qualified =
                i >= 2 && punct(toks, i - 1) == Some(':') && punct(toks, i - 2) == Some(':');
            if !(i > 0 && matches!(ident(toks, i - 1), Some("fn") | Some("struct"))) {
                let qualifier = if qualified {
                    ident(toks, i.wrapping_sub(3)).map(|s| s.to_string())
                } else {
                    None
                };
                let close = find_close_paren(toks, i + 1);
                let args = split_args(toks, i + 1, close)
                    .into_iter()
                    .map(|(a, b)| arg_root(&toks[a..b]))
                    .collect();
                facts.calls.push(CallSite {
                    callee: name.clone(),
                    qualifier,
                    method: dotted,
                    line: toks[i].line,
                    col: toks[i].col,
                    args,
                });
            }
        }
        i += 1;
    }
    facts
}

/// Whether `toks[i]` starts a plain assignment target (not a field
/// access of something else, not a comparison).
fn is_plain_assign(toks: &[Token], i: usize) -> bool {
    let (_, past) = read_chain(toks, i);
    if punct(toks, past) != Some('=') {
        return false;
    }
    // `==` and `=>` are not assignments; compound ops (`+=`) have the
    // operator punct, not the ident, before `=`.
    !matches!(punct(toks, past + 1), Some('=') | Some('>'))
        || toks.get(past + 1).map(|t| (t.line, t.col))
            != toks.get(past).map(|t| (t.line, t.col + 1))
}

/// Read an ident chain `a.b.c` starting at `i`; returns the joined
/// chain and the index just past it.
fn read_chain(toks: &[Token], i: usize) -> (String, usize) {
    let mut segs = Vec::new();
    let mut j = i;
    while let Some(s) = ident(toks, j) {
        segs.push(s.to_string());
        if punct(toks, j + 1) == Some('.') && ident(toks, j + 2).is_some() {
            j += 2;
        } else {
            j += 1;
            break;
        }
    }
    (segs.join("."), j)
}

/// Whether the receiver `chain` is mentioned in the loop `[kw, close]`
/// *only* to derive — i.e. every occurrence is immediately followed by
/// `.derive(` / `.derive_idx(`. One mention that draws from or
/// reassigns the receiver means its state can differ per iteration.
fn receiver_only_derives(toks: &[Token], kw: usize, close: usize, chain: &str) -> bool {
    let segs: Vec<&str> = chain.split('.').collect();
    let mut j = kw;
    while j <= close {
        if let Some(past) = chain_matches(toks, j, &segs) {
            let deriving = punct(toks, past) == Some('.')
                && matches!(ident(toks, past + 1), Some("derive") | Some("derive_idx"))
                && punct(toks, past + 2) == Some('(');
            if !deriving {
                return false;
            }
            j = past;
        } else {
            j += 1;
        }
    }
    true
}

/// The two leading string-literal identity args of a metric call, if
/// present (each optionally `&`-prefixed).
fn identity_literals(toks: &[Token], open: usize) -> Option<(String, String)> {
    let close = find_close_paren(toks, open);
    let args = split_args(toks, open, close);
    if args.len() < 2 {
        return None;
    }
    let lit = |(a, b): (usize, usize)| -> Option<String> {
        let s = if punct(toks, a) == Some('&') {
            a + 1
        } else {
            a
        };
        if s + 1 == b {
            str_lit(toks, s).map(|l| l.to_string())
        } else {
            None
        }
    };
    Some((lit(args[0])?, lit(args[1])?))
}

/// Where a registration's returned handle is bound: `let t = …`,
/// `t: …` (struct literal field), `self.t = …`.
fn binding_target(toks: &[Token], head: usize) -> Option<String> {
    if head == 0 {
        return None;
    }
    match punct(toks, head - 1) {
        Some('=') if punct(toks, head.wrapping_sub(2)) != Some('=') => {
            let t = head.checked_sub(2)?;
            let name = ident(toks, t)?;
            if name == "mut" {
                return None;
            }
            Some(name.to_string())
        }
        Some(':') => {
            // Struct-literal field `name: reg.counter(…)` — but not a
            // path `::` or a type ascription after `let name:`.
            if punct(toks, head.wrapping_sub(2)) == Some(':') {
                return None;
            }
            let t = head.checked_sub(2)?;
            let name = ident(toks, t)?;
            let before = t.checked_sub(1).and_then(|b| punct(toks, b));
            if matches!(before, Some('{') | Some(',') | None) {
                Some(name.to_string())
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Render a param type for SimRng detection.
pub fn is_simrng_ty(ty: &str) -> bool {
    ty.split(' ').any(|t| t == "SimRng")
}

/// Convenience used by tests: full single-file extraction from source.
pub fn extract_source(path: &str, source: &str) -> FileModel {
    let lexed = crate::lexer::lex(source);
    let ast = crate::parser::parse_file(&lexed);
    extract_file(path, &lexed, &ast)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts_of(src: &str) -> FnFacts {
        let fm = extract_source("crates/faas/src/x.rs", src);
        fm.fns.first().map(|f| f.facts.clone()).unwrap_or_default()
    }

    #[test]
    fn derive_roots_and_labels() {
        let f = facts_of(
            "fn f(rng: &mut SimRng) {\n\
                 let a = rng.derive(\"alpha\");\n\
                 let b = self_less();\n\
                 let c = SimRng::seed_from(7).derive(\"beta\");\n\
             }",
        );
        assert_eq!(f.derives.len(), 2);
        assert_eq!(f.derives[0].label, "alpha");
        assert_eq!(f.derives[0].root, RecvRoot::Named("rng".into()));
        assert_eq!(f.derives[1].root, RecvRoot::Fresh);
    }

    #[test]
    fn self_field_chain_is_a_named_root() {
        let f = facts_of("fn f(&mut self) { let r = self.rng.derive(\"day\"); }");
        assert_eq!(f.derives[0].root, RecvRoot::Named("self.rng".into()));
    }

    #[test]
    fn loop_invariant_derive_is_detected() {
        let f = facts_of(
            "fn f(rng: &mut SimRng) { for h in 0..4 { let s = rng.derive(\"host\"); use_stream(s); } }",
        );
        assert!(f.derives[0].in_loop);
        assert!(f.derives[0].loop_invariant);
    }

    #[test]
    fn advancing_receiver_in_loop_is_not_invariant() {
        let f = facts_of(
            "fn f(rng: &mut SimRng) { for h in 0..4 { let s = rng.derive(\"host\"); rng.next_u64(); } }",
        );
        assert!(f.derives[0].in_loop);
        assert!(!f.derives[0].loop_invariant);
    }

    #[test]
    fn derive_idx_is_not_recorded() {
        let f =
            facts_of("fn f(rng: &mut SimRng) { for h in 0..4 { rng.derive_idx(\"host\", h); } }");
        assert!(f.derives.is_empty());
    }

    #[test]
    fn call_sites_capture_qualifier_and_arg_roots() {
        let f = facts_of(
            "fn f(rng: SimRng) { AzPlatform::new(spec, 3, rng); helper(&mut rng); x.shift(self.buf); }",
        );
        assert_eq!(f.calls.len(), 3);
        assert_eq!(f.calls[0].callee, "new");
        assert_eq!(f.calls[0].qualifier.as_deref(), Some("AzPlatform"));
        assert_eq!(f.calls[0].args[2].as_deref(), Some("rng"));
        assert_eq!(f.calls[1].callee, "helper");
        assert_eq!(f.calls[1].args[0].as_deref(), Some("rng"));
        assert!(f.calls[2].method);
        assert_eq!(f.calls[2].args[0].as_deref(), Some("self.buf"));
    }

    #[test]
    fn metric_identity_and_touch_sites() {
        let f = facts_of(
            "fn f(m: &mut MetricsRegistry) {\n\
                 let hits = m.counter(\"faas\", \"hits\", &[]);\n\
                 m.add(hits, 1);\n\
                 m.observe(lat, 9);\n\
             }",
        );
        assert_eq!(f.metric_regs.len(), 1);
        assert_eq!(f.metric_regs[0].kind, "counter");
        assert_eq!(
            f.metric_regs[0].identity,
            Some(("faas".to_string(), "hits".to_string()))
        );
        assert_eq!(f.metric_regs[0].target.as_deref(), Some("hits"));
        assert_eq!(f.metric_touches.len(), 2);
        assert_eq!(f.metric_touches[0].target, "hits");
        assert_eq!(f.metric_touches[1].kind, "histogram");
    }

    #[test]
    fn struct_literal_registration_target() {
        let f = facts_of(
            "fn f(m: &mut MetricsRegistry) -> H { H { success: m.counter(\"faas\", \"requests\", &l), } }",
        );
        assert_eq!(f.metric_regs[0].target.as_deref(), Some("success"));
    }

    #[test]
    fn span_sites_need_a_spanish_receiver() {
        let f = facts_of(
            "fn f(&mut self) { self.spans.open(id, t); file.open(path); self.spans.close(id, t, p); }",
        );
        assert_eq!(f.span_opens.len(), 1);
        assert_eq!(f.span_closes, 1);
    }

    #[test]
    fn rebinds_are_recorded() {
        let f = facts_of("fn f() { let rng = a(); rng = b(); self.rng = c(); if x == y {} }");
        let names: Vec<&str> = f.rebinds.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["rng", "rng", "self.rng"]);
    }

    #[test]
    fn model_is_sorted_by_path() {
        let a = extract_source("b.rs", "fn x() {}");
        let b = extract_source("a.rs", "fn y() {}");
        let m = WorkspaceModel::from_files(vec![a, b]);
        assert_eq!(m.files[0].path, "a.rs");
    }
}
