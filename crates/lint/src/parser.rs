//! An item-level Rust parser on top of [`crate::lexer`]: exactly the
//! structure the workspace semantic rules (D008–D011) need, and nothing
//! more.
//!
//! The parser extracts *items* — functions (with parameter lists and
//! body token ranges), impl blocks (to qualify methods by their type),
//! structs (with field names and type token text), statics, and macro
//! invocations — from the flat token stream. It is deliberately
//! approximate where Rust's grammar is deep (pattern parameters, const
//! generics in return types) and deliberately exact where the rules
//! depend on it (body brace matching, `impl Trait for Type` naming,
//! field type text).
//!
//! Two hard guarantees, both enforced by `tests/model.rs`:
//!
//! * **Totality** — `parse_file` never panics, on any input. Malformed
//!   or truncated source degrades to fewer items, never to a crash:
//!   the compiler is the arbiter of validity, the linter only needs to
//!   see what *does* parse.
//! * **Determinism** — output depends only on the token stream, so the
//!   [`crate::model::WorkspaceModel`] built on top is byte-stable
//!   across file discovery order.

use crate::lexer::{Lexed, Tok, Token};

/// One parsed file: every item the semantic rules care about.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileAst {
    /// Function items (free fns, methods, nested fns), in source order.
    pub fns: Vec<FnItem>,
    /// Struct definitions with named fields, in source order.
    pub structs: Vec<StructItem>,
    /// `static` items, in source order.
    pub statics: Vec<StaticItem>,
    /// Macro invocations (`name!(…)` / `name!{…}` / `name![…]`).
    pub macro_uses: Vec<MacroUse>,
}

/// A function item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type name, when the fn is a method.
    pub container: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Parameters in order; `self` receivers are *excluded* so the
    /// index of a parameter matches the index of a call argument.
    pub params: Vec<Param>,
    /// Token index range `[start, end)` of the body (inside the
    /// braces); `None` for bodyless signatures (trait methods, externs).
    pub body: Option<(usize, usize)>,
}

/// One function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Binding name; empty for destructuring patterns.
    pub name: String,
    /// Space-joined type token text (e.g. `& mut SimRng`).
    pub ty: String,
}

/// A struct definition with named fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// 1-based line of the name.
    pub line: u32,
    /// Named fields in order (tuple/unit structs parse as empty).
    pub fields: Vec<FieldItem>,
}

/// One named struct field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldItem {
    /// Field name.
    pub name: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// 1-based column of the field name.
    pub col: u32,
    /// Space-joined type token text (e.g. `Arc < Mutex < Vec < u64 > > >`).
    pub ty: String,
}

/// A `static` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticItem {
    /// Static name.
    pub name: String,
    /// 1-based line of the `static` keyword.
    pub line: u32,
    /// 1-based column of the `static` keyword.
    pub col: u32,
    /// Whether declared `static mut`.
    pub is_mut: bool,
    /// Space-joined type token text.
    pub ty: String,
}

/// A macro invocation site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroUse {
    /// Macro name (without the `!`).
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Join a token slice into canonical space-separated text. Idents and
/// puncts render as themselves; strings, chars and numbers render as
/// opaque placeholders (the rules only match on type *names*).
pub fn type_text(toks: &[Token]) -> String {
    let mut out = String::new();
    for t in toks {
        if !out.is_empty() {
            out.push(' ');
        }
        match &t.tok {
            Tok::Ident(s) => out.push_str(s),
            Tok::Punct(c) => out.push(*c),
            Tok::Str(_) => out.push_str("\"…\""),
            Tok::Char => out.push_str("'…'"),
            Tok::Lifetime => out.push('\''),
            Tok::Num => out.push('#'),
        }
    }
    out
}

fn ident(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Whether the `>` at index `i` is the second half of a `->` arrow
/// (adjacent `-` on the same line), so angle-depth tracking skips it.
fn is_arrow_gt(toks: &[Token], i: usize) -> bool {
    i > 0
        && punct(toks, i) == Some('>')
        && punct(toks, i - 1) == Some('-')
        && toks[i - 1].line == toks[i].line
        && toks[i - 1].col + 1 == toks[i].col
}

/// Index just past the `<…>` group opening at `i` (which must be `<`).
/// Returns `toks.len()` on unbalanced input.
fn skip_angles(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match punct(toks, j) {
            Some('<') => depth += 1,
            Some('>') if !is_arrow_gt(toks, j) => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            // A semicolon or brace at angle depth means the `<` was a
            // comparison, not generics; bail without consuming.
            Some(';') | Some('{') | Some('}') => return i + 1,
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Index of the punct matching the opener at `i` (`(`/`[`/`{`), or
/// `toks.len()` when unbalanced.
fn find_matching(toks: &[Token], i: usize) -> usize {
    let (open, close) = match punct(toks, i) {
        Some('(') => ('(', ')'),
        Some('[') => ('[', ']'),
        Some('{') => ('{', '}'),
        _ => return i,
    };
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match punct(toks, j) {
            Some(c) if c == open => depth += 1,
            Some(c) if c == close => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Split `toks` at top-level commas (commas outside all `()`/`[]`/`{}`
/// and `<…>` groups), returning subslice ranges.
fn split_commas(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = 0usize;
    for j in 0..toks.len() {
        match punct(toks, j) {
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => depth -= 1,
            Some('<') => angle += 1,
            Some('>') if !is_arrow_gt(toks, j) && angle > 0 => angle -= 1,
            Some(',') if depth == 0 && angle == 0 => {
                out.push((start, j));
                start = j + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        out.push((start, toks.len()));
    }
    out
}

/// Skip attribute groups `#[…]` at the start of `toks[from..]`.
fn skip_attrs(toks: &[Token], mut from: usize) -> usize {
    while punct(toks, from) == Some('#') {
        let mut j = from + 1;
        if punct(toks, j) == Some('!') {
            j += 1;
        }
        if punct(toks, j) != Some('[') {
            break;
        }
        from = find_matching(toks, j).saturating_add(1);
    }
    from
}

/// Parse one parameter slice into `(name, type_text)`.
fn parse_param(toks: &[Token]) -> Option<Param> {
    let s = skip_attrs(toks, 0);
    let piece = toks.get(s..)?;
    if piece.is_empty() {
        return None;
    }
    // Find the top-level `:` splitting pattern from type.
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut colon = None;
    for j in 0..piece.len() {
        match punct(piece, j) {
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => depth -= 1,
            Some('<') => angle += 1,
            Some('>') if !is_arrow_gt(piece, j) && angle > 0 => angle -= 1,
            Some(':') if depth == 0 && angle == 0 => {
                // `::` is a path separator, not the pattern/type colon.
                if punct(piece, j + 1) == Some(':') || (j > 0 && punct(piece, j - 1) == Some(':')) {
                    continue;
                }
                colon = Some(j);
                break;
            }
            _ => {}
        }
    }
    match colon {
        Some(c) => {
            // Simple binding: optional `mut`, then one ident. Anything
            // with grouping puncts is a destructuring pattern.
            let pattern = &piece[..c];
            let simple = pattern
                .iter()
                .all(|t| matches!(&t.tok, Tok::Ident(_) | Tok::Punct('&') | Tok::Lifetime));
            let name = if simple {
                pattern
                    .iter()
                    .rev()
                    .find_map(|t| match &t.tok {
                        Tok::Ident(s) if s != "mut" => Some(s.clone()),
                        _ => None,
                    })
                    .unwrap_or_default()
            } else {
                String::new()
            };
            Some(Param {
                name,
                ty: type_text(&piece[c + 1..]),
            })
        }
        None => {
            // `self`, `&self`, `&mut self` receivers — excluded from the
            // positional parameter list (see `FnItem::params`).
            if piece
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "self"))
            {
                None
            } else {
                Some(Param {
                    name: String::new(),
                    ty: type_text(piece),
                })
            }
        }
    }
}

/// Parse a lexed file into items. Never panics; unparseable regions
/// contribute no items.
pub fn parse_file(lexed: &Lexed) -> FileAst {
    let toks = &lexed.tokens;
    let mut ast = FileAst::default();
    // Stack of enclosing impl blocks: (type name, brace depth at open).
    let mut impls: Vec<(String, u32)> = Vec::new();
    let mut depth = 0u32;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                while impls.last().is_some_and(|(_, d)| *d > depth) {
                    // The impl block whose body opened at depth+1 just
                    // closed (>= also drops frames orphaned by
                    // unbalanced input).
                    impls.pop();
                }
            }
            Tok::Ident(kw) if kw == "impl" => {
                if let Some((name, at)) = parse_impl_header(toks, i) {
                    // Frame records the depth its `{` will open *to*.
                    impls.push((name, depth + 1));
                    i = at; // position of the `{`; loop handles depth
                    continue;
                }
            }
            Tok::Ident(kw) if kw == "fn" => {
                if let Some((item, _next)) = parse_fn(toks, i, impls.last().map(|(n, _)| n.clone()))
                {
                    ast.fns.push(item);
                }
                // Continue scanning from inside the header so nested
                // fns and the body's braces are seen by this loop.
            }
            Tok::Ident(kw) if kw == "struct" => {
                if let Some(item) = parse_struct(toks, i) {
                    ast.structs.push(item);
                }
            }
            Tok::Ident(kw) if kw == "static" => {
                if let Some(item) = parse_static(toks, i) {
                    ast.statics.push(item);
                }
            }
            Tok::Ident(name)
                if punct(toks, i + 1) == Some('!')
                    && matches!(punct(toks, i + 2), Some('(') | Some('{') | Some('[')) =>
            {
                ast.macro_uses.push(MacroUse {
                    name: name.clone(),
                    line: toks[i].line,
                    col: toks[i].col,
                });
            }
            _ => {}
        }
        i += 1;
    }
    ast
}

/// Parse an `impl` header starting at the `impl` keyword; returns the
/// implemented type name and the index of the opening `{`.
fn parse_impl_header(toks: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    if punct(toks, j) == Some('<') {
        j = skip_angles(toks, j);
    }
    // Walk to the body `{`, remembering the last type-position ident at
    // angle depth 0 (re-reading after `for` naturally lands on the
    // implemented type in `impl Trait for Type`).
    let mut name: Option<String> = None;
    let mut angle = 0i32;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('{') => {
                return name.map(|n| (n, j));
            }
            Tok::Punct(';') => return None,
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') if !is_arrow_gt(toks, j) && angle > 0 => angle -= 1,
            Tok::Ident(s) if s == "for" && angle == 0 => name = None,
            Tok::Ident(s) if s == "where" && angle == 0 => {}
            Tok::Ident(s) if angle == 0 => name = Some(s.clone()),
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parse a `fn` item starting at the `fn` keyword. Returns the item and
/// the index just past the header (the body `{` if any).
fn parse_fn(toks: &[Token], i: usize, container: Option<String>) -> Option<(FnItem, usize)> {
    let name = ident(toks, i + 1)?.to_string();
    let mut j = i + 2;
    if punct(toks, j) == Some('<') {
        j = skip_angles(toks, j);
    }
    if punct(toks, j) != Some('(') {
        return None; // `fn(u32) -> u32` pointer type, not an item
    }
    let close = find_matching(toks, j);
    let params: Vec<Param> = split_commas(toks.get(j + 1..close)?)
        .into_iter()
        .filter_map(|(a, b)| parse_param(&toks[j + 1 + a..j + 1 + b]))
        .collect();
    // Scan past return type / where clause to the body `{` or a `;`.
    let mut k = close + 1;
    let mut angle = 0i32;
    while k < toks.len() {
        match punct(toks, k) {
            Some('{') if angle <= 0 => {
                let end = find_matching(toks, k);
                return Some((
                    FnItem {
                        name,
                        container,
                        line: toks[i].line,
                        col: toks[i].col,
                        params,
                        body: Some((k + 1, end)),
                    },
                    k,
                ));
            }
            Some(';') if angle <= 0 => {
                return Some((
                    FnItem {
                        name,
                        container,
                        line: toks[i].line,
                        col: toks[i].col,
                        params,
                        body: None,
                    },
                    k,
                ));
            }
            Some('<') => angle += 1,
            Some('>') if !is_arrow_gt(toks, k) => angle -= 1,
            Some('(') | Some('[') => k = find_matching(toks, k),
            _ => {}
        }
        k += 1;
    }
    None
}

/// Parse a `struct` item starting at the `struct` keyword.
fn parse_struct(toks: &[Token], i: usize) -> Option<StructItem> {
    let name = ident(toks, i + 1)?.to_string();
    let line = toks[i + 1].line;
    let mut j = i + 2;
    if punct(toks, j) == Some('<') {
        j = skip_angles(toks, j);
    }
    // Walk the (optional) where clause to `{`, `(` or `;`.
    loop {
        match punct(toks, j) {
            Some('{') => break,
            Some('(') | Some(';') | None => {
                // Tuple or unit struct: no named fields to model.
                return Some(StructItem {
                    name,
                    line,
                    fields: Vec::new(),
                });
            }
            _ => j += 1,
        }
        if j >= toks.len() {
            return Some(StructItem {
                name,
                line,
                fields: Vec::new(),
            });
        }
    }
    let end = find_matching(toks, j);
    let body = toks.get(j + 1..end)?;
    let mut fields = Vec::new();
    for (a, b) in split_commas(body) {
        if let Some(f) = parse_field(&body[a..b]) {
            fields.push(f);
        }
    }
    Some(StructItem { name, line, fields })
}

/// Parse one struct field slice (`[pub] name: Type`).
fn parse_field(toks: &[Token]) -> Option<FieldItem> {
    let mut s = skip_attrs(toks, 0);
    if ident(toks, s) == Some("pub") {
        s += 1;
        if punct(toks, s) == Some('(') {
            s = find_matching(toks, s) + 1;
        }
    }
    let name = ident(toks, s)?.to_string();
    if punct(toks, s + 1) != Some(':') {
        return None;
    }
    Some(FieldItem {
        name,
        line: toks[s].line,
        col: toks[s].col,
        ty: type_text(toks.get(s + 2..)?),
    })
}

/// Parse a `static` item starting at the `static` keyword.
fn parse_static(toks: &[Token], i: usize) -> Option<StaticItem> {
    let mut j = i + 1;
    let is_mut = ident(toks, j) == Some("mut");
    if is_mut {
        j += 1;
    }
    let name = ident(toks, j)?.to_string();
    if punct(toks, j + 1) != Some(':') {
        return None; // `static` in another position (e.g. macro body)
    }
    // Type runs to the `=` (or terminating `;`) at bracket depth 0.
    let mut k = j + 2;
    let mut depth = 0i32;
    while k < toks.len() {
        match punct(toks, k) {
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => depth -= 1,
            Some('=') | Some(';') if depth == 0 => break,
            _ => {}
        }
        k += 1;
    }
    Some(StaticItem {
        name,
        line: toks[i].line,
        col: toks[i].col,
        is_mut,
        ty: type_text(toks.get(j + 2..k)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileAst {
        parse_file(&lex(src))
    }

    #[test]
    fn free_fn_with_params_and_body() {
        let ast = parse("pub fn route(rng: &mut SimRng, n: u64) -> u64 { n }");
        assert_eq!(ast.fns.len(), 1);
        let f = &ast.fns[0];
        assert_eq!(f.name, "route");
        assert_eq!(f.container, None);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "rng");
        assert_eq!(f.params[0].ty, "& mut SimRng");
        assert!(f.body.is_some());
    }

    #[test]
    fn methods_are_qualified_by_impl_type() {
        let ast = parse(
            "impl AzPlatform { fn acquire(&mut self, id: u32) {} }\n\
             impl std::fmt::Display for AzId { fn fmt(&self) {} }\n\
             fn free() {}",
        );
        let names: Vec<(Option<&str>, &str)> = ast
            .fns
            .iter()
            .map(|f| (f.container.as_deref(), f.name.as_str()))
            .collect();
        assert_eq!(
            names,
            [
                (Some("AzPlatform"), "acquire"),
                (Some("AzId"), "fmt"),
                (None, "free"),
            ]
        );
        // `self` receivers are excluded from positional params.
        assert_eq!(ast.fns[0].params.len(), 1);
        assert_eq!(ast.fns[0].params[0].name, "id");
    }

    #[test]
    fn generic_impl_and_fn_headers_parse() {
        let ast = parse("impl<'a, T: Ord> Wheel<T> { fn push<Q>(&mut self, q: Q) where Q: Into<T> { let _ = q; } }");
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].container.as_deref(), Some("Wheel"));
        assert_eq!(ast.fns[0].params[0].name, "q");
    }

    #[test]
    fn nested_fns_are_both_items() {
        let ast = parse("fn outer() { fn inner(x: u8) {} inner(1); }");
        let names: Vec<&str> = ast.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        // inner's body range nests inside outer's.
        let (os, oe) = ast.fns[0].body.unwrap();
        let (is_, ie) = ast.fns[1].body.unwrap();
        assert!(os < is_ && ie <= oe);
    }

    #[test]
    fn struct_fields_carry_type_text() {
        let ast = parse(
            "#[derive(Debug)] pub struct LaneShared { pub outcomes: Arc<Mutex<Vec<u64>>>, digest: u64 }",
        );
        assert_eq!(ast.structs.len(), 1);
        let s = &ast.structs[0];
        assert_eq!(s.name, "LaneShared");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].ty, "Arc < Mutex < Vec < u64 > > >");
        assert_eq!(s.fields[1].name, "digest");
    }

    #[test]
    fn tuple_and_unit_structs_have_no_fields() {
        let ast = parse("struct Wrap(u64); struct Marker;");
        assert_eq!(ast.structs.len(), 2);
        assert!(ast.structs.iter().all(|s| s.fields.is_empty()));
    }

    #[test]
    fn statics_and_mutability() {
        let ast = parse(
            "static NAMES: [&str; 2] = [\"a\", \"b\"];\n\
             static mut TICKS: u64 = 0;\n\
             static CACHE: OnceLock<Mutex<Vec<u64>>> = OnceLock::new();",
        );
        assert_eq!(ast.statics.len(), 3);
        assert!(!ast.statics[0].is_mut);
        assert!(ast.statics[1].is_mut);
        assert_eq!(ast.statics[1].name, "TICKS");
        assert!(ast.statics[2].ty.contains("Mutex"));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let ast = parse("struct S { f: fn(u32) -> u32 } fn real() {}");
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "real");
    }

    #[test]
    fn macro_uses_are_recorded() {
        let ast = parse("fn f() { lazy_static! { static ref X: u8 = 1; } println!(\"x\"); }");
        let names: Vec<&str> = ast.macro_uses.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"lazy_static"));
        assert!(names.contains(&"println"));
    }

    #[test]
    fn truncated_source_never_panics() {
        let src = "impl Foo { fn bar(x: &mut SimRng) -> u64 { x.next_u64() } }";
        for cut in 0..=src.len() {
            if src.is_char_boundary(cut) {
                let _ = parse(&src[..cut]);
            }
        }
    }

    #[test]
    fn comparison_lt_does_not_eat_the_file() {
        // `a < b` inside a body must not be mistaken for generics.
        let ast = parse("fn a(x: u64) -> bool { x < 3 }\nfn b() {}");
        assert_eq!(ast.fns.len(), 2);
    }
}
