//! The token-level determinism rules (D001–D007). The interprocedural
//! rules (D008–D011) live in [`crate::semantic`]; the pragma-hygiene
//! findings (P001 malformed pragma, P002 unused pragma) are emitted by
//! the pipeline in `lib.rs`.
//!
//! Every rule here is resolvable at token level — deliberately: the
//! gate must run in offline CI with zero dependencies, and a rule that
//! needs whole-program type inference is a rule whose false-negative
//! modes nobody can reason about. Where a rule is a heuristic
//! approximation of the real invariant (D005, D006), the approximation
//! is documented here and in `DESIGN.md` §9; the semantic rules'
//! approximations are documented on [`crate::semantic`] and §13.
//!
//! | rule | invariant |
//! |------|-----------|
//! | D001 | no `HashMap`/`HashSet` in sim-affecting crates (iteration order leaks into event order) |
//! | D002 | no wall clock (`Instant::now`, `SystemTime::now`) outside `bench`/`cli` |
//! | D003 | no ambient entropy (`thread_rng`, `rand::random`, `from_entropy`, `OsRng`, `getrandom`) anywhere |
//! | D004 | no duplicate `SimRng::derive("label")` literals within one function body |
//! | D005 | no float `+=`/`.sum()` accumulation over money identifiers in sim-affecting crates |
//! | D006 | no `pub` hash-keyed map fields in `#[derive(Serialize)]` snapshot types |
//! | D007 | no unordered parallel reductions (`.lock()` + `push`/`extend`/`insert`/`append` on one line) in sim crates or `bench` |
//! | D008 | RNG lineage: no sibling-stream label collisions across function boundaries, no loop-invariant labels derived in loops |
//! | D009 | metrics contracts: one kind per `(subsystem, name)` workspace-wide; handles touched only with their kind's methods |
//! | D010 | span pairing: every opened span reaches a `close` through the intra-crate call graph |
//! | D011 | cross-lane state: no `static mut` / interior-mutable statics / `lazy_static!` in parallel crates, no `Arc<Mutex<_>>`/`Arc<RwLock<_>>` fields reachable from sharded lane code |

use crate::lexer::{Lexed, Tok, Token};

/// All suppressible rule ids (P001/P002 are not suppressible: pragma
/// hygiene cannot be pragma'd away).
pub const RULE_IDS: [&str; 11] = [
    "D001", "D002", "D003", "D004", "D005", "D006", "D007", "D008", "D009", "D010", "D011",
];

/// Crates whose code runs inside (or feeds state into) the seeded
/// simulation — the D001/D005 scope.
pub const SIM_CRATES: [&str; 6] = ["sim-core", "cloud", "core", "faas", "mesh", "workloads"];

/// Crates allowed to read the wall clock (host-side measurement and
/// interactive tooling — never simulation state).
pub const WALLCLOCK_ALLOWLIST: [&str; 2] = ["bench", "cli"];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id (`D001`…`D007`, `P001`, `P002`).
    pub rule: &'static str,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

/// Per-file scope derived from the workspace-relative path.
#[derive(Debug, Clone, Copy)]
struct FileScope {
    /// Inside one of [`SIM_CRATES`] (D001/D005 apply).
    sim: bool,
    /// Inside the wall-clock allowlist (D002 does not apply).
    wallclock_allowed: bool,
    /// Inside a crate that may run parallel reductions over sim
    /// results — the sim crates plus `bench`, home of the sweep
    /// runner and the sharded fleet driver (the D007 scope).
    parallel: bool,
}

fn crate_of(rel_path: &str) -> Option<&str> {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
}

fn scope_of(rel_path: &str) -> FileScope {
    let krate = crate_of(rel_path);
    FileScope {
        sim: krate.is_some_and(|k| SIM_CRATES.contains(&k)),
        wallclock_allowed: krate.is_some_and(|k| WALLCLOCK_ALLOWLIST.contains(&k)),
        parallel: krate.is_some_and(|k| SIM_CRATES.contains(&k) || k == "bench"),
    }
}

/// Raw token-level findings (D001–D007) for one file — no pragma
/// suppression, no hygiene findings; the pipeline in `lib.rs` applies
/// those after merging in the semantic findings.
pub(crate) fn token_findings(rel_path: &str, lexed: &Lexed) -> Vec<Finding> {
    let scope = scope_of(rel_path);
    let mut raw: Vec<Finding> = Vec::new();
    rule_d001_hash_collections(rel_path, lexed, scope, &mut raw);
    rule_d002_wall_clock(rel_path, lexed, scope, &mut raw);
    rule_d003_ambient_entropy(rel_path, lexed, &mut raw);
    rule_d004_duplicate_stream_labels(rel_path, lexed, &mut raw);
    rule_d005_float_money(rel_path, lexed, scope, &mut raw);
    rule_d006_serialized_hash_maps(rel_path, lexed, &mut raw);
    rule_d007_unordered_parallel_reductions(rel_path, lexed, scope, &mut raw);
    raw
}

fn push_once_per_line(out: &mut Vec<Finding>, f: Finding) {
    let dup = out
        .iter()
        .any(|g| g.rule == f.rule && g.line == f.line && g.path == f.path);
    if !dup {
        out.push(f);
    }
}

/// D001 — hash-ordered collections in sim-affecting crates. Flags every
/// mention (imports, types, constructors): the cheapest place to stop
/// nondeterministic iteration is before the collection exists at all.
fn rule_d001_hash_collections(path: &str, lexed: &Lexed, scope: FileScope, out: &mut Vec<Finding>) {
    if !scope.sim {
        return;
    }
    for t in &lexed.tokens {
        if let Tok::Ident(name) = &t.tok {
            if name == "HashMap" || name == "HashSet" {
                push_once_per_line(
                    out,
                    Finding {
                        path: path.to_string(),
                        line: t.line,
                        col: t.col,
                        rule: "D001",
                        message: format!(
                            "`{name}` in a sim-affecting crate: hash iteration order can \
                             leak into event order"
                        ),
                        hint: format!(
                            "use `BTree{}` (sorted, deterministic) or justify with \
                             `// sky-lint: allow(D001, <reason>)`",
                            &name[4..]
                        ),
                    },
                );
            }
        }
    }
}

/// D002 — wall-clock reads outside the bench/cli allowlist. Simulated
/// components must take time from `SimTime`; a single `Instant::now`
/// in a sim crate makes replay machine-dependent.
fn rule_d002_wall_clock(path: &str, lexed: &Lexed, scope: FileScope, out: &mut Vec<Finding>) {
    if scope.wallclock_allowed {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        if name != "Instant" && name != "SystemTime" {
            continue;
        }
        if path_then(toks, i + 1, "now") {
            push_once_per_line(
                out,
                Finding {
                    path: path.to_string(),
                    line: toks[i].line,
                    col: toks[i].col,
                    rule: "D002",
                    message: format!(
                        "wall-clock read `{name}::now` outside the bench/cli allowlist"
                    ),
                    hint: "simulated components take time from `SimTime`; host-side timing \
                           belongs in crates/bench or crates/cli"
                        .to_string(),
                },
            );
        }
    }
}

/// Whether `toks[i..]` is `:: <ident>` for the given ident.
fn path_then(toks: &[Token], i: usize, ident: &str) -> bool {
    matches!(
        (toks.get(i), toks.get(i + 1), toks.get(i + 2)),
        (Some(a), Some(b), Some(c))
            if a.tok == Tok::Punct(':')
                && b.tok == Tok::Punct(':')
                && c.tok == Tok::Ident(ident.to_string())
    )
}

/// D003 — ambient entropy anywhere in the workspace. All randomness
/// must flow through `SimRng::derive("label")` named streams.
fn rule_d003_ambient_entropy(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        let hit = match name.as_str() {
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => true,
            "rand" => path_then(toks, i + 1, "random"),
            _ => false,
        };
        if hit {
            push_once_per_line(
                out,
                Finding {
                    path: path.to_string(),
                    line: toks[i].line,
                    col: toks[i].col,
                    rule: "D003",
                    message: format!("ambient entropy source `{name}`"),
                    hint: "every random draw must come from a named stream: \
                           `SimRng::seed_from(seed).derive(\"label\")`"
                        .to_string(),
                },
            );
        }
    }
}

/// D004 — duplicate `.derive("label")` string literals within one
/// function body. Two identical labels derived from the same parent
/// state yield byte-identical streams: silently correlated randomness.
fn rule_d004_duplicate_stream_labels(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    // Scope stack: (brace_depth_at_open, labels seen in this fn body).
    let mut scopes: Vec<(u32, Vec<String>)> = vec![(0, Vec::new())];
    let mut depth = 0u32;
    let mut pending_fn = false;
    let mut paren_depth = 0u32;

    for i in 0..toks.len() {
        match &toks[i].tok {
            Tok::Ident(name) if name == "fn" => pending_fn = true,
            Tok::Punct('(') => paren_depth += 1,
            Tok::Punct(')') => paren_depth = paren_depth.saturating_sub(1),
            Tok::Punct(';') if pending_fn && paren_depth == 0 => {
                // Bodyless signature (trait method / extern): no scope.
                pending_fn = false;
            }
            Tok::Punct('{') => {
                depth += 1;
                if pending_fn && paren_depth == 0 {
                    scopes.push((depth, Vec::new()));
                    pending_fn = false;
                }
            }
            Tok::Punct('}') => {
                if let Some(&(open_depth, _)) = scopes.last() {
                    if open_depth == depth && scopes.len() > 1 {
                        scopes.pop();
                    }
                }
                depth = depth.saturating_sub(1);
            }
            Tok::Ident(name) if name == "derive" => {
                // Method call `.derive("lit")`: dot before, string after.
                let dotted = i > 0 && toks[i - 1].tok == Tok::Punct('.');
                let lit = match (toks.get(i + 1), toks.get(i + 2)) {
                    (Some(open), Some(arg)) if open.tok == Tok::Punct('(') => match &arg.tok {
                        Tok::Str(s) => Some(s.clone()),
                        _ => None,
                    },
                    _ => None,
                };
                if let (true, Some(label)) = (dotted, lit) {
                    let labels = &mut scopes.last_mut().expect("root scope").1;
                    if labels.contains(&label) {
                        out.push(Finding {
                            path: path.to_string(),
                            line: toks[i].line,
                            col: toks[i].col,
                            rule: "D004",
                            message: format!(
                                "duplicate stream label {label:?} within one function body: \
                                 identical labels alias the same stream"
                            ),
                            hint: "give each derived stream a distinct label (or derive \
                                   from the already-derived child)"
                                .to_string(),
                        });
                    } else {
                        labels.push(label);
                    }
                }
            }
            _ => {}
        }
    }
}

const MONEY_MARKERS: [&str; 7] = ["cost", "usd", "price", "bill", "spend", "revenue", "dollar"];
const INTEGER_MONEY_MARKERS: [&str; 3] = ["nano", "cents", "mb_us"];

fn is_money_ident(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    MONEY_MARKERS.iter().any(|m| lower.contains(m))
}

fn is_integer_money_ident(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    INTEGER_MONEY_MARKERS.iter().any(|m| lower.contains(m))
}

/// D005 — float accumulation over money identifiers in sim-affecting
/// crates. Canonical billing state is integer (nano-USD, mb·µs); float
/// folds are only tolerable in presentation layers, and only with a
/// pragma explaining the deterministic fold order.
///
/// Heuristic: a `+=` statement or `.sum()` call whose *line* mentions a
/// money identifier (`cost`, `usd`, `price`, `bill`, …) and no integer
/// money marker (`nano`, `cents`, `mb_us`).
fn rule_d005_float_money(path: &str, lexed: &Lexed, scope: FileScope, out: &mut Vec<Finding>) {
    if !scope.sim {
        return;
    }
    let toks = &lexed.tokens;
    let mut hits: Vec<(u32, u32, &'static str)> = Vec::new();
    for i in 0..toks.len() {
        match &toks[i].tok {
            Tok::Punct('+') => {
                if let Some(next) = toks.get(i + 1) {
                    if next.tok == Tok::Punct('=')
                        && next.line == toks[i].line
                        && next.col == toks[i].col + 1
                    {
                        hits.push((toks[i].line, toks[i].col, "accumulation `+=`"));
                    }
                }
            }
            Tok::Ident(name) if name == "sum" && i > 0 && toks[i - 1].tok == Tok::Punct('.') => {
                hits.push((toks[i].line, toks[i].col, "`.sum()` fold"));
            }
            _ => {}
        }
    }
    for (line, col, what) in hits {
        let line_idents: Vec<&String> = toks
            .iter()
            .filter(|t| t.line == line)
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect();
        let money = line_idents.iter().any(|s| is_money_ident(s));
        let integer = line_idents.iter().any(|s| is_integer_money_ident(s));
        if money && !integer {
            push_once_per_line(
                out,
                Finding {
                    path: path.to_string(),
                    line,
                    col,
                    rule: "D005",
                    message: format!(
                        "floating-point {what} over a money identifier in a sim-affecting \
                         crate"
                    ),
                    hint: "keep metered money in integer nano-USD (and GB-seconds in \
                           mb\u{b7}\u{b5}s); float USD is presentation-only and needs \
                           `// sky-lint: allow(D005, <reason>)`"
                        .to_string(),
                },
            );
        }
    }
}

/// D006 — `pub` hash-keyed map fields inside `#[derive(Serialize)]`
/// types. A serialized `HashMap` writes entries in iteration order, so
/// two identical snapshots can serialize differently; exporters must
/// sort (`BTreeMap`, or a `Vec` sorted at snapshot time).
fn rule_d006_serialized_hash_maps(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        // Match `# [ derive ( ... ) ]` and collect the derive list.
        if toks[i].tok != Tok::Punct('#') {
            i += 1;
            continue;
        }
        let Some(open) = toks.get(i + 1) else { break };
        if open.tok != Tok::Punct('[') {
            i += 1;
            continue;
        }
        let Some(kw) = toks.get(i + 2) else { break };
        if kw.tok != Tok::Ident("derive".to_string()) {
            i += 1;
            continue;
        }
        let mut j = i + 3;
        let mut derives: Vec<String> = Vec::new();
        let mut paren = 0i32;
        while let Some(t) = toks.get(j) {
            match &t.tok {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => {
                    paren -= 1;
                    if paren == 0 {
                        break;
                    }
                }
                Tok::Ident(name) => derives.push(name.clone()),
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
        if !derives.iter().any(|d| d == "Serialize") {
            continue;
        }
        // Skip `]`, further attributes, and find `pub struct Name {`.
        let mut k = i;
        while toks.get(k).map(|t| &t.tok) == Some(&Tok::Punct(']')) {
            k += 1;
            // Another attribute?
            while toks.get(k).map(|t| &t.tok) == Some(&Tok::Punct('#')) {
                let mut bracket = 0i32;
                k += 1;
                while let Some(t) = toks.get(k) {
                    match t.tok {
                        Tok::Punct('[') => bracket += 1,
                        Tok::Punct(']') => {
                            bracket -= 1;
                            if bracket == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        let exported = toks.get(k).map(|t| &t.tok) == Some(&Tok::Ident("pub".to_string()))
            && toks.get(k + 1).map(|t| &t.tok) != Some(&Tok::Punct('('));
        if !exported {
            continue;
        }
        if toks.get(k + 1).map(|t| &t.tok) != Some(&Tok::Ident("struct".to_string())) {
            continue;
        }
        // Find the field block: first `{` after the struct name (a `;`
        // first means a unit/tuple struct — nothing to check).
        let mut b = k + 2;
        loop {
            match toks.get(b).map(|t| &t.tok) {
                Some(Tok::Punct('{')) => break,
                Some(Tok::Punct(';')) | None => {
                    b = usize::MAX;
                    break;
                }
                _ => b += 1,
            }
        }
        if b == usize::MAX {
            continue;
        }
        check_struct_fields(path, toks, b, out);
    }
}

/// Walk a brace-delimited struct body starting at the `{` token index;
/// flag `pub` fields whose type mentions `HashMap`/`HashSet`.
fn check_struct_fields(path: &str, toks: &[Token], open: usize, out: &mut Vec<Finding>) {
    let mut depth = 0i32;
    let mut field_start = open + 1;
    let mut j = open;
    while let Some(t) = toks.get(j) {
        // `->` inside a field type (fn-pointer fields) is an arrow, not
        // a closing angle bracket.
        let arrow = t.tok == Tok::Punct('>')
            && j > 0
            && toks[j - 1].tok == Tok::Punct('-')
            && toks[j - 1].line == t.line
            && toks[j - 1].col + 1 == t.col;
        if arrow {
            j += 1;
            continue;
        }
        match t.tok {
            Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('<') => depth += 1,
            Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    check_one_field(path, &toks[field_start..j], out);
                    return;
                }
            }
            Tok::Punct(',') if depth == 1 => {
                check_one_field(path, &toks[field_start..j], out);
                field_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
}

/// D007 — unordered parallel reductions. A worker that does
/// `shared.lock()….push(result)` commits results in thread *completion*
/// order, which varies run to run even under a fixed seed — the one
/// nondeterminism parallelism can smuggle past it. The deterministic
/// shape is the sweep runner's: one pre-allocated slot per item index,
/// assigned under its own lock, merged in item order after the join.
///
/// Heuristic: a line that both acquires a lock (`.lock()`) and grows a
/// collection (`push`/`extend`/`insert`/`append`), inside the sim
/// crates or `bench` (where the parallel drivers live).
fn rule_d007_unordered_parallel_reductions(
    path: &str,
    lexed: &Lexed,
    scope: FileScope,
    out: &mut Vec<Finding>,
) {
    if !scope.parallel {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        if name != "lock"
            || i == 0
            || toks[i - 1].tok != Tok::Punct('.')
            || toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('('))
        {
            continue;
        }
        let line = toks[i].line;
        let grower = toks.iter().enumerate().find(|(j, t)| {
            t.line == line
                && matches!(&t.tok, Tok::Ident(m)
                    if m == "push" || m == "extend" || m == "insert" || m == "append")
                && toks.get(j + 1).map(|n| &n.tok) == Some(&Tok::Punct('('))
        });
        if let Some((_, t)) = grower {
            if let Tok::Ident(m) = &t.tok {
                push_once_per_line(
                    out,
                    Finding {
                        path: path.to_string(),
                        line,
                        col: t.col,
                        rule: "D007",
                        message: format!(
                            "unordered parallel reduction: `.{m}` on a lock-guarded \
                             collection commits results in thread completion order"
                        ),
                        hint: "reduce into one pre-allocated slot per item index and \
                               merge in item order (see `sky_bench::sweep::run`), or \
                               sort by a deterministic key before folding"
                            .to_string(),
                    },
                );
            }
        }
    }
}

fn check_one_field(path: &str, field: &[Token], out: &mut Vec<Finding>) {
    if field.is_empty() {
        return;
    }
    // Skip field attributes `#[...]`.
    let mut s = 0usize;
    while field.get(s).map(|t| &t.tok) == Some(&Tok::Punct('#')) {
        let mut bracket = 0i32;
        s += 1;
        while let Some(t) = field.get(s) {
            match t.tok {
                Tok::Punct('[') => bracket += 1,
                Tok::Punct(']') => {
                    bracket -= 1;
                    if bracket == 0 {
                        s += 1;
                        break;
                    }
                }
                _ => {}
            }
            s += 1;
        }
    }
    let public = field.get(s).map(|t| &t.tok) == Some(&Tok::Ident("pub".to_string()))
        && field.get(s + 1).map(|t| &t.tok) != Some(&Tok::Punct('('));
    if !public {
        return;
    }
    for t in field {
        if let Tok::Ident(name) = &t.tok {
            if name == "HashMap" || name == "HashSet" {
                out.push(Finding {
                    path: path.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: "D006",
                    message: format!(
                        "pub `{name}` field in a `#[derive(Serialize)]` snapshot type \
                         serializes in nondeterministic iteration order"
                    ),
                    hint: "exporters must sort: use `BTreeMap`, or collect into a sorted \
                           `Vec` at snapshot time"
                        .to_string(),
                });
                return;
            }
        }
    }
}
