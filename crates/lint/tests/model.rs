//! Property tests for the workspace model layer.
//!
//! The parser behind [`sky_lint::model`] is hand-rolled over the token
//! stream, so the properties worth pinning are blunt ones: it must be
//! *total* (no input — including truncated, mid-token garbage — may
//! panic), and the model it builds must be byte-stable whatever order
//! the files arrive in. The latter is what makes the semantic rules'
//! output diffable in CI.

use std::fs;
use std::path::PathBuf;

use sky_lint::model::{extract_source, WorkspaceModel};
use sky_lint::{
    collect_workspace_files, find_workspace_root, lint_workspace_with_jobs, render_json,
};

/// Every `.rs` file the linter can see: the real workspace plus both
/// fixture corpora (the fixtures deliberately exercise odd shapes).
fn corpus() -> Vec<(String, String)> {
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(&manifest_dir).expect("workspace root");
    let mut files: Vec<(String, String)> = collect_workspace_files(&root)
        .expect("walk workspace")
        .into_iter()
        .map(|rel| {
            let source = fs::read_to_string(root.join(&rel)).expect("read workspace file");
            (rel, source)
        })
        .collect();
    for kind in ["dirty", "clean"] {
        let dir = manifest_dir.join("fixtures").join(kind);
        let mut names: Vec<String> = fs::read_dir(&dir)
            .expect("read fixture dir")
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".rs"))
            .collect();
        names.sort();
        for name in names {
            let source = fs::read_to_string(dir.join(&name)).expect("read fixture");
            files.push((format!("fixtures/{kind}/{name}"), source));
        }
    }
    assert!(
        files.len() > 40,
        "corpus unexpectedly small: {}",
        files.len()
    );
    files
}

/// Extraction is total over every real file we have, and over every
/// char-boundary truncation of a sample of them — truncation tears
/// tokens, bodies, and generics mid-flight, which is exactly where a
/// hand-rolled parser would index out of bounds.
#[test]
fn extraction_never_panics_on_corpus_or_truncations() {
    let files = corpus();
    for (path, source) in &files {
        let _ = extract_source(path, source);
    }
    // Truncation sweep on a deterministic sample (every 7th file, every
    // 31st char boundary) keeps the test fast while still covering
    // thousands of torn inputs.
    for (path, source) in files.iter().step_by(7) {
        let boundaries: Vec<usize> = source.char_indices().map(|(i, _)| i).step_by(31).collect();
        for &cut in &boundaries {
            let _ = extract_source(path, &source[..cut]);
        }
    }
}

/// The model's contents are independent of file discovery order: the
/// constructor sorts by path, so forward and reversed input produce a
/// byte-identical `Debug` rendering.
#[test]
fn model_is_byte_stable_across_discovery_order() {
    let files = corpus();
    let forward =
        WorkspaceModel::from_files(files.iter().map(|(p, s)| extract_source(p, s)).collect());
    let backward = WorkspaceModel::from_files(
        files
            .iter()
            .rev()
            .map(|(p, s)| extract_source(p, s))
            .collect(),
    );
    assert_eq!(format!("{forward:?}"), format!("{backward:?}"));
}

/// Parallel linting joins shards in spawn order, so the report is
/// byte-identical whatever `--jobs` is.
#[test]
fn workspace_report_is_byte_stable_across_jobs() {
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(&manifest_dir).expect("workspace root");
    let serial = render_json(&lint_workspace_with_jobs(&root, 1).expect("jobs=1"));
    let parallel = render_json(&lint_workspace_with_jobs(&root, 4).expect("jobs=4"));
    assert_eq!(serial, parallel);
}
