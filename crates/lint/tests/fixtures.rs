//! Golden-tested fixture corpus for the linter itself.
//!
//! Every rule must have both a failing (dirty) and a passing (clean)
//! fixture, the dirty corpus's full JSON report is golden-pinned (drift
//! means a rule changed behaviour — review it like any other golden),
//! and the report bytes must be identical whatever order the files are
//! discovered in. Regenerate the golden after an intentional rule
//! change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sky-lint --test fixtures
//! ```

use std::fs;
use std::path::PathBuf;

use sky_lint::{lint_source, render_json, sort_findings, Finding};

fn fixture_dir(kind: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
}

/// The virtual workspace path a fixture is linted under. Most fixtures
/// pose as sim-crate code (the strictest scope); the D006 pair poses as
/// bench code to show the snapshot rule applies even outside sim crates
/// (and so its map mentions exercise D006, not D001); the D011 pair
/// poses as sharded lane code, the scope where cross-lane state bites.
fn virtual_path(file_name: &str) -> String {
    if file_name.starts_with("d006") {
        format!("crates/bench/src/{file_name}")
    } else if file_name.starts_with("d011") {
        format!("crates/faas/src/sharded/{file_name}")
    } else {
        format!("crates/faas/src/{file_name}")
    }
}

/// Lint every fixture in `kind`, in the given direction, returning
/// findings in canonical order.
fn lint_corpus(kind: &str, reverse: bool) -> Vec<Finding> {
    let dir = fixture_dir(kind);
    let mut names: Vec<String> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".rs"))
        .collect();
    names.sort();
    if reverse {
        names.reverse();
    }
    let mut findings = Vec::new();
    for name in &names {
        let source = fs::read_to_string(dir.join(name)).unwrap();
        findings.extend(lint_source(&virtual_path(name), &source));
    }
    sort_findings(&mut findings);
    findings
}

fn rules_in(findings: &[Finding], file_stem: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = findings
        .iter()
        .filter(|f| f.path.contains(file_stem))
        .map(|f| f.rule)
        .collect();
    rules.sort();
    rules.dedup();
    rules
}

/// Every rule fires on its dirty fixture and stays silent on its clean
/// counterpart — the "passing and failing fixture per rule" contract.
#[test]
fn every_rule_has_a_failing_and_a_passing_fixture() {
    let dirty = lint_corpus("dirty", false);
    let clean = lint_corpus("clean", false);
    for rule in [
        "D001", "D002", "D003", "D004", "D005", "D006", "D007", "D008", "D009", "D010", "D011",
    ] {
        let stem = rule.to_lowercase();
        assert!(
            rules_in(&dirty, &stem).contains(&rule),
            "{rule} must fire on its dirty fixture; dirty findings: {:?}",
            dirty.iter().map(|f| (f.rule, &f.path)).collect::<Vec<_>>()
        );
        assert!(
            rules_in(&clean, &stem).is_empty(),
            "clean fixture for {rule} must produce no findings, got {:?}",
            clean
                .iter()
                .filter(|f| f.path.contains(&stem))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn clean_corpus_is_entirely_clean() {
    let clean = lint_corpus("clean", false);
    assert!(
        clean.is_empty(),
        "clean fixtures must produce zero findings, got:\n{}",
        sky_lint::render_human(&clean)
    );
}

/// The pragma parser rejects `allow` without a reason: the malformed
/// pragma is a P001 finding *and* fails to suppress the D001 underneath.
#[test]
fn pragma_without_reason_is_rejected_and_does_not_suppress() {
    let dirty = lint_corpus("dirty", false);
    let rules = rules_in(&dirty, "pragma_missing_reason");
    assert!(rules.contains(&"P001"), "missing-reason pragma → P001");
    assert!(
        rules.contains(&"D001"),
        "a malformed pragma must not suppress the finding under it"
    );
}

#[test]
fn unknown_rule_and_bad_directive_are_rejected() {
    let dirty = lint_corpus("dirty", false);
    let p001s = dirty
        .iter()
        .filter(|f| f.path.contains("pragma_unknown_rule") && f.rule == "P001")
        .count();
    assert_eq!(p001s, 2, "unknown rule + bad directive are both P001");
}

#[test]
fn unused_pragma_is_a_finding() {
    let dirty = lint_corpus("dirty", false);
    assert!(
        rules_in(&dirty, "pragma_unused").contains(&"P002"),
        "a pragma that suppresses nothing must be flagged"
    );
}

/// The JSON report is byte-identical whatever order files are
/// discovered in — the property that makes the CI gate diffable.
#[test]
fn json_output_is_stable_across_discovery_order() {
    let forward = render_json(&lint_corpus("dirty", false));
    let backward = render_json(&lint_corpus("dirty", true));
    assert_eq!(forward, backward);
}

/// The dirty corpus's full JSON report, golden-pinned. A diff here
/// means a rule's behaviour changed: review it, then regenerate with
/// `UPDATE_GOLDEN=1 cargo test -p sky-lint --test fixtures`.
#[test]
fn dirty_corpus_matches_golden() {
    let golden_path = fixture_dir("").join("expected_dirty.json");
    let actual = render_json(&lint_corpus("dirty", false));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&golden_path, &actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (regenerate with UPDATE_GOLDEN=1)",
            golden_path.display()
        )
    });
    if expected != actual {
        let diff: String = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .filter(|(_, (e, a))| e != a)
            .take(20)
            .map(|(i, (e, a))| format!("  {:>4} - {e}\n  {:>4} + {a}\n", i + 1, i + 1))
            .collect();
        panic!(
            "dirty-corpus lint report drifted from expected_dirty.json:\n{diff}\
             (review, then regenerate with UPDATE_GOLDEN=1)"
        );
    }
}

/// The acceptance gate itself: the real workspace must lint clean, and
/// every suppression in it must carry a reason (the parser guarantees
/// the latter — a reasonless allow would surface here as P001).
#[test]
fn workspace_is_clean() {
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = sky_lint::find_workspace_root(&manifest_dir).expect("workspace root");
    let findings = sky_lint::lint_workspace(&root).expect("lint workspace");
    assert!(
        findings.is_empty(),
        "workspace must be determinism-clean:\n{}",
        sky_lint::render_human(&findings)
    );
}
