//! D011 dirty fixture (poses as `crates/faas/src/sharded/` lane code):
//! every flavour of cross-lane shared mutable state — `static mut`, an
//! interior-mutable static, a `lazy_static!` global, and a struct whose
//! `Arc<Mutex<_>>` field lets lanes contend on one lock.

static mut COMPLETED: u64 = 0;

static RESULTS: Mutex<Vec<u64>> = Mutex::new(Vec::new());

lazy_static! {
    static ref REGIONS: Vec<String> = Vec::new();
}

pub struct LaneShared {
    pub results: Arc<Mutex<Vec<u64>>>,
}

pub fn drain(shared: &LaneShared) -> usize {
    shared.results.lock().unwrap().len()
}
