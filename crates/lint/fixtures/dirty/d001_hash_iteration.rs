//! D001 dirty fixture: hash-ordered collections in a sim-affecting
//! crate (linted as if at `crates/faas/src/...`). Never compiled.

use std::collections::HashMap;
use std::collections::HashSet;

pub struct Fleet {
    slots: HashMap<u64, u32>,
}

pub fn drain(fleet: &Fleet) -> Vec<u32> {
    let seen: HashSet<u64> = fleet.slots.keys().copied().collect();
    fleet.slots.values().map(|&v| v + seen.len() as u32).collect()
}
