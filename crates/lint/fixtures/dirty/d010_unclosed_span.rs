//! D010 dirty fixture: a span is opened but no function reachable from
//! the opener ever closes it — the phase ledger leaks an open phase.

pub struct Tracer {
    spans: SpanLedger,
}

impl Tracer {
    pub fn handle(&mut self, now: u64) {
        self.spans.open(7, now);
        self.route(now);
    }

    pub fn route(&mut self, now: u64) {
        let _ = now;
    }
}
