//! D008 dirty fixture: stream-label collisions that only appear across
//! function boundaries (D004 is silent on both).
//!
//! `correlated` derives "churn" directly *and* hands the same root to
//! `spawn_churn`, which derives "churn" again — two "independent"
//! subsystems now read byte-identical streams. `warm_loop` derives a
//! loop-invariant label inside a loop: every iteration gets the same
//! stream.

pub fn spawn_churn(rng: &SimRng) -> SimRng {
    rng.derive("churn")
}

pub fn correlated(root: &SimRng) -> (SimRng, SimRng) {
    let mine = root.derive("churn");
    let theirs = spawn_churn(&root);
    (mine, theirs)
}

pub fn warm_loop(root: &SimRng) {
    for _az in 0..4 {
        let host = root.derive("host");
        host.gen_range(0..8);
    }
}
