//! P002 dirty fixture: a pragma that suppresses nothing is stale and
//! must be deleted — dead allows rot into blanket permission.

// sky-lint: allow(D003, there is no entropy anywhere near this line)
pub fn pure(x: u64) -> u64 {
    x.wrapping_mul(2)
}
