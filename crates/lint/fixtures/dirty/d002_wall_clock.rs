//! D002 dirty fixture: wall-clock reads outside the bench/cli
//! allowlist (linted as if at `crates/sim-core/src/...`).

use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    let mono = Instant::now();
    let wall = SystemTime::now();
    (mono, wall)
}
