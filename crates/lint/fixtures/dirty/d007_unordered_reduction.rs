//! D007 dirty fixture: workers fold results into one shared locked
//! `Vec`, so the merged order is thread completion order — different
//! on every run even under a fixed seed.

pub fn collect(items: &[Cell]) -> Vec<Outcome> {
    let results = Mutex::new(Vec::new());
    crossbeam::thread::scope(|s| {
        for item in items {
            s.spawn(|_| {
                let outcome = run_cell(item);
                results.lock().expect("poisoned").push(outcome);
            });
        }
    })
    .expect("worker panicked");
    results.into_inner().expect("poisoned")
}
