//! P001 dirty fixture: an `allow` with no reason is itself a finding —
//! a suppression that cannot say *why* the site is safe is worthless.

// sky-lint: allow(D001)
use std::collections::HashMap;

pub fn lookup(map: &HashMap<u64, u64>, k: u64) -> Option<u64> {
    map.get(&k).copied()
}
