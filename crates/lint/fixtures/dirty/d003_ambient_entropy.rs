//! D003 dirty fixture: ambient entropy sources (flagged anywhere in
//! the workspace, not just sim crates).

pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    let coin: bool = rand::random();
    let seeded = SmallRng::from_entropy();
    let _ = (coin, seeded);
    rng.gen()
}
