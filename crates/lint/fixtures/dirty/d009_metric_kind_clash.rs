//! D009 dirty fixture: one metric identity registered under two kinds
//! (the registry panics on this at runtime), plus a handle registered
//! as one kind but touched as another.

pub fn register_all(reg: &MetricsRegistry) {
    let c = reg.counter("faas", "invocations", &[]);
    reg.add(c, 1);
    let h = reg.histogram("faas", "invocations", &[]);
    reg.observe(h, 42);
    let g = reg.gauge("faas", "queue_depth", &[]);
    reg.add(g, 1);
}
