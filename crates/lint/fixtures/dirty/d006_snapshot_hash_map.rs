//! D006 dirty fixture: a `pub` hash-keyed map inside a
//! `#[derive(Serialize)]` snapshot type — serialization order follows
//! hash iteration order, so identical snapshots can emit different
//! bytes.

use std::collections::BTreeMap;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    pub counters: HashMap<String, u64>,
    pub sorted: BTreeMap<String, u64>,
}
