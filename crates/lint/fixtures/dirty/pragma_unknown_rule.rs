//! P001 dirty fixture: pragmas must name a real rule.

// sky-lint: allow(D042, the answer is not a rule)
pub fn noop() {}

// sky-lint: forbid(D001, not a directive either)
pub fn still_noop() {}
