//! D005 dirty fixture: floating-point accumulation over money
//! identifiers in a sim-affecting crate.

pub fn bill(outcomes: &[Outcome]) -> f64 {
    let mut total_cost_usd = 0.0;
    for o in outcomes {
        total_cost_usd += o.cost_usd;
    }
    let retry_usd: f64 = outcomes.iter().map(|o| o.retry_cost_usd).sum();
    total_cost_usd + retry_usd
}
