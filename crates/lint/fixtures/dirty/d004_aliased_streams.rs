//! D004 dirty fixture: the same stream label derived twice within one
//! function body — the two "independent" streams are byte-identical.

pub fn correlated(root: &SimRng) -> (SimRng, SimRng) {
    let placement = root.derive("placement");
    let faults = root.derive("placement");
    (placement, faults)
}
