//! D007 clean fixture: the indexed-slot reduction — each worker writes
//! only its own pre-allocated slot, and the merge reads the slots in
//! item order after the join, erasing completion order entirely.

pub fn collect(items: &[Cell]) -> Vec<Outcome> {
    let slots: Vec<Mutex<Option<Outcome>>> = items.iter().map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|s| {
        for (i, item) in items.iter().enumerate() {
            s.spawn(move |_| {
                *slots[i].lock().expect("poisoned") = Some(run_cell(item));
            });
        }
    })
    .expect("worker panicked");
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("poisoned").expect("every cell ran"))
        .collect()
}
