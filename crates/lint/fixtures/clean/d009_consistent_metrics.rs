//! D009 clean fixture: every identity keeps one kind, every handle is
//! touched with its own kind's method — including shadowed `let h`
//! rebindings, which must resolve in source order.

pub fn register_all(reg: &MetricsRegistry) {
    let h = reg.counter("faas", "invocations", &[]);
    reg.add(h, 1);
    let h = reg.gauge("faas", "queue_depth", &[]);
    reg.set_gauge(h, 3);
    let h = reg.histogram("faas", "exec_us", &[]);
    reg.observe(h, 120);
    reg.observe_duration(h, 7);
}
