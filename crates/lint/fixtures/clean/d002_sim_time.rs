//! D002 clean fixture: simulated components take time from `SimTime`;
//! mentioning the types without calling `::now` is fine.

use std::time::Instant;

pub fn elapsed(start: SimTime, now: SimTime) -> SimDuration {
    now - start
}

pub fn held(_anchor: Instant) {}
