//! D004 clean fixture: distinct labels per function body; the same
//! label in *different* functions is fine (different parent states).

pub fn independent(root: &SimRng) -> (SimRng, SimRng) {
    let placement = root.derive("placement");
    let faults = root.derive("faults");
    (placement, faults)
}

pub fn other_fn(root: &SimRng) -> SimRng {
    root.derive("placement")
}
