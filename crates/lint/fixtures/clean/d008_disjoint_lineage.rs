//! D008 clean fixture: the same helper and loop shapes as the dirty
//! twin, but each root hands out every label exactly once and per-item
//! streams go through the sanctioned `derive_idx` escape.

pub fn spawn_churn(rng: &SimRng) -> SimRng {
    rng.derive("churn")
}

pub fn independent(root: &SimRng) -> (SimRng, SimRng) {
    let mine = root.derive("faults");
    let theirs = spawn_churn(&root);
    (mine, theirs)
}

pub fn warm_loop(root: &SimRng) {
    for az in 0..4 {
        let host = root.derive_idx("host", az);
        host.gen_range(0..8);
    }
}
