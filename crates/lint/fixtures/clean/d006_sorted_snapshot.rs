//! D006 clean fixture: snapshot types expose sorted maps (or private
//! hash maps that the exporter sorts before writing).

use std::collections::BTreeMap;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    hidden_index: HashMap<String, u64>,
}

pub struct NotSerialized {
    pub raw: HashMap<String, u64>,
}
