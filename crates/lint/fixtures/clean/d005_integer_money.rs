//! D005 clean fixture: metered money stays in integer nano-USD; a
//! justified presentation-layer float fold carries a pragma.

pub fn bill(outcomes: &[Outcome]) -> u64 {
    let mut total_cost_nanos: u64 = 0;
    for o in outcomes {
        total_cost_nanos += o.cost_nanos;
    }
    total_cost_nanos
}

pub fn render(outcomes: &[Outcome]) -> f64 {
    let mut shown_usd = 0.0;
    for o in outcomes {
        // sky-lint: allow(D005, outcome-ordered f64 fold for display only)
        shown_usd += o.cost_usd;
    }
    shown_usd
}
