//! D011 clean fixture (poses as `crates/faas/src/sharded/` lane code):
//! each lane owns its state outright and results are merged in lane
//! index order at the barrier; the only static is an immutable scalar.

static LANE_COUNT: usize = 8;

pub struct LaneState {
    pub completed: u64,
    pub results: Vec<u64>,
}

pub fn merge(lanes: Vec<LaneState>) -> u64 {
    let mut total = 0;
    for lane in lanes {
        total += lane.completed;
    }
    total + LANE_COUNT as u64
}
