//! D010 clean fixture: the opener never closes the span itself, but a
//! callee on its call-graph path does — pairing across function
//! boundaries is exactly what the rule must accept.

pub struct Tracer {
    spans: SpanLedger,
}

impl Tracer {
    pub fn handle(&mut self, now: u64) {
        self.spans.open(7, now);
        self.finish(now);
    }

    pub fn finish(&mut self, now: u64) {
        self.spans.close(7, now, 0);
    }
}
