//! D003 clean fixture: all entropy flows through named `SimRng`
//! streams derived from the root seed.

pub fn jitter(seed: u64) -> u64 {
    let mut rng = SimRng::seed_from(seed).derive("jitter");
    rng.next_u64()
}
