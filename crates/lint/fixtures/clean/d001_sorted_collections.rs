//! D001 clean fixture: sorted collections, plus one justified hash map.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
// sky-lint: allow(D001, lookup-only interning index; never iterated)
use std::collections::HashMap;

pub struct Fleet {
    slots: BTreeMap<u64, u32>,
    names: BTreeSet<String>,
    // sky-lint: allow(D001, lookup-only interning index; never iterated)
    interned: HashMap<String, u32>,
}

pub fn drain(fleet: &Fleet) -> Vec<u32> {
    let _ = (&fleet.names, &fleet.interned);
    fleet.slots.values().copied().collect()
}
