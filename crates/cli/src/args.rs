//! Minimal dependency-free argument parsing for the `skyward` CLI.
//!
//! Supports `--flag value`, `--flag=value` and positional arguments; the
//! command grammar itself lives in `main.rs`.

use std::collections::BTreeMap;

/// Parsed command-line arguments: positionals in order, flags by name.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Args {
    positionals: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// Error parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A `--flag` appeared with no value.
    MissingValue(String),
    /// A flag value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending raw value.
        value: String,
        /// Expected type description.
        expected: &'static str,
    },
}

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgsError::MissingValue(flag) => write!(f, "--{flag} requires a value"),
            ArgsError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag}={value:?} is not a valid {expected}")
            }
        }
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parse raw arguments, treating the named flags as boolean
    /// *switches*: `--all` stores `"true"` without consuming the next
    /// token (while `--all=no` still records the explicit value).
    pub fn parse_with_switches<I: IntoIterator<Item = String>>(
        raw: I,
        switches: &[&str],
    ) -> Result<Args, ArgsError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(flag) = token.strip_prefix("--") {
                if let Some((name, value)) = flag.split_once('=') {
                    args.flags.insert(name.to_string(), value.to_string());
                } else if switches.contains(&flag) {
                    args.flags.insert(flag.to_string(), "true".to_string());
                } else {
                    match iter.next() {
                        Some(value) => {
                            args.flags.insert(flag.to_string(), value);
                        }
                        None => return Err(ArgsError::MissingValue(flag.to_string())),
                    }
                }
            } else {
                args.positionals.push(token);
            }
        }
        Ok(args)
    }

    /// Positional argument by index.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positionals.get(index).map(|s| s.as_str())
    }

    /// Number of positionals.
    pub fn n_positionals(&self) -> usize {
        self.positionals.len()
    }

    /// Raw string flag.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// Integer flag with default.
    pub fn flag_u64(&self, name: &str, default: u64) -> Result<u64, ArgsError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                flag: name.to_string(),
                value: v.clone(),
                expected: "integer",
            }),
        }
    }

    /// Comma-separated list flag.
    pub fn flag_list(&self, name: &str) -> Vec<String> {
        self.flags
            .get(name)
            .map(|v| {
                v.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse_with_switches(tokens.iter().map(|s| s.to_string()), &[]).unwrap()
    }

    #[test]
    fn positionals_and_flags() {
        let args = parse(&["characterize", "us-west-1b", "--polls", "6", "--seed=9"]);
        assert_eq!(args.positional(0), Some("characterize"));
        assert_eq!(args.positional(1), Some("us-west-1b"));
        assert_eq!(args.n_positionals(), 2);
        assert_eq!(args.flag_u64("polls", 4).unwrap(), 6);
        assert_eq!(args.flag_u64("seed", 42).unwrap(), 9);
        assert_eq!(args.flag_u64("missing", 7).unwrap(), 7);
    }

    #[test]
    fn list_flag() {
        let args = parse(&["route", "--candidates", "a, b,c,"]);
        assert_eq!(args.flag_list("candidates"), vec!["a", "b", "c"]);
        assert!(args.flag_list("none").is_empty());
    }

    #[test]
    fn switches_are_bare() {
        let args = Args::parse_with_switches(
            ["exp", "run", "--all", "--scale", "quick", "--json"]
                .iter()
                .map(|s| s.to_string()),
            &["all", "json"],
        )
        .unwrap();
        assert_eq!(args.flag("all"), Some("true"));
        assert_eq!(args.flag("json"), Some("true"));
        assert_eq!(args.flag("scale"), Some("quick"));
        assert_eq!(args.n_positionals(), 2);
    }

    #[test]
    fn missing_value_rejected() {
        let err = Args::parse_with_switches(["--polls".to_string()], &[]).unwrap_err();
        assert_eq!(err, ArgsError::MissingValue("polls".into()));
    }

    #[test]
    fn bad_integer_rejected() {
        let args = parse(&["--polls", "six"]);
        assert!(matches!(
            args.flag_u64("polls", 1),
            Err(ArgsError::BadValue { .. })
        ));
    }
}
