//! `skyward` — command-line driver for the serverless sky-computing
//! toolkit.
//!
//! ```text
//! skyward world        [--seed N]
//! skyward workloads
//! skyward exp          list | describe <name>
//! skyward exp          run <name>... | run --all
//!                      [--scale quick|full] [--jobs N] [--seed N]
//!                      [--out DIR]
//! skyward characterize <az>[,<az>...] [--polls N] [--jobs N] [--seed N] [--json]
//!                      [--stream]
//! skyward saturate     <az> [--seed N]
//! skyward profile      <workload> <az> [--runs N] [--seed N]
//! skyward route        <workload> --baseline <az> [--candidates a,b,c]
//!                      [--policy baseline|regional|retry-slow|focus|hybrid
//!                       |ucb-az|thompson-az]
//!                      [--burst N] [--seed N]
//! skyward faults       [--jobs N] [--scale quick|full]
//! skyward report       [--jobs N] [--scale quick|full] [--format table|prom|json]
//! skyward lint         [--root PATH] [--format human|json]
//! ```
//!
//! Everything runs against the seeded simulator; the same seed always
//! reproduces the same world and the same numbers.

mod args;

use args::Args;
use sky_bench::registry;
use sky_bench::sweep::{self, Jobs};
use sky_bench::Scale;
use sky_core::cloud::{Arch, AzId, Catalog, CpuType, Provider};
use sky_core::faas::{FaasEngine, FleetConfig};
use sky_core::sim::series::Table;
use sky_core::sim::SimDuration;
use sky_core::workloads::{PerfModel, WorkloadKind};
use sky_core::{
    savings_fraction, CampaignConfig, CharacterizationStore, Characterizer, RetryMode,
    RouterConfig, RoutingPolicy, SamplingCampaign, SmartRouter, StreamingCharacterizer,
    StreamingConfig, WorkloadProfiler,
};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(raw) {
        Ok(()) => 0,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `skyward help` for usage");
            2
        }
    };
    std::process::exit(code);
}

fn run(raw: Vec<String>) -> Result<(), String> {
    let args = Args::parse_with_switches(
        raw,
        &["all", "json", "verbose", "fix-pragmas", "write", "stream"],
    )
    .map_err(|e| e.to_string())?;
    let seed = args.flag_u64("seed", 42).map_err(|e| e.to_string())?;
    match args.positional(0) {
        None | Some("help") | Some("--help") => {
            print_help();
            Ok(())
        }
        Some("world") => {
            expect_arity(&args, 1)?;
            cmd_world(seed)
        }
        Some("workloads") => cmd_workloads(),
        Some("exp") => cmd_exp(&args, seed),
        Some("characterize") => {
            expect_arity(&args, 2)?;
            cmd_characterize(&args, seed)
        }
        Some("saturate") => {
            expect_arity(&args, 2)?;
            cmd_saturate(&args, seed)
        }
        Some("profile") => {
            expect_arity(&args, 3)?;
            cmd_profile(&args, seed)
        }
        Some("route") => cmd_route(&args, seed),
        Some("faults") => {
            expect_arity(&args, 1)?;
            cmd_faults(&args)
        }
        Some("report") => {
            expect_arity(&args, 1)?;
            cmd_report(&args)
        }
        Some("lint") => {
            expect_arity(&args, 1)?;
            cmd_lint(&args)
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    }
}

/// Reject stray positional arguments (typos like `characterize us west`).
fn expect_arity(args: &Args, n: usize) -> Result<(), String> {
    if args.n_positionals() > n {
        return Err(format!(
            "unexpected extra argument {:?}",
            args.positional(n).unwrap_or("")
        ));
    }
    Ok(())
}

fn print_help() {
    println!(
        "skyward — serverless sky computing toolkit (simulated cloud)\n\
         \n\
         commands:\n\
         \x20 world        [--seed N]                 list regions and zones\n\
         \x20 workloads                               the Table-1 workload suite\n\
         \x20 exp          list                       the registered experiments\n\
         \x20 exp          describe <name>            one experiment's parameters\n\
         \x20 exp          run <name>... | run --all  run experiments through the\n\
         \x20              [--scale quick|full] [--jobs N] [--out DIR]\n\
         \x20                                         registry (writes DIR/<name>.txt\n\
         \x20                                         per experiment, else stdout)\n\
         \x20 characterize <az>[,<az>...] [--polls N] estimate zones' CPU mixes\n\
         \x20              [--jobs N]                 (zones characterized in parallel)\n\
         \x20              [--stream]                 follow the campaign with observed\n\
         \x20                                         production traffic through the\n\
         \x20                                         streaming estimator (EWMA + CUSUM)\n\
         \x20 saturate     <az>                       poll a zone to its failure point\n\
         \x20 profile      <workload> <az> [--runs N] per-CPU runtimes for a workload\n\
         \x20 route        <workload> --baseline <az> [--candidates a,b,c]\n\
         \x20              [--policy baseline|regional|retry-slow|focus|hybrid\n\
         \x20               |ucb-az|thompson-az]\n\
         \x20              [--burst N]                compare a policy against the baseline\n\
         \x20 faults       [--jobs N] [--scale quick|full]\n\
         \x20                                         baseline vs resilient client under\n\
         \x20                                         each injected fault class\n\
         \x20 report       [--jobs N] [--scale quick|full] [--format table|prom|json]\n\
         \x20                                         deterministic metrics rollup of the\n\
         \x20                                         standard experiments (per-AZ and\n\
         \x20                                         per-policy breakdowns)\n\
         \x20 lint         [--root PATH] [--format human|json] [--jobs N]\n\
         \x20                                         determinism static + semantic\n\
         \x20                                         analysis (rules D001-D011; exits 1\n\
         \x20                                         on findings)\n\
         \x20 lint --fix-pragmas [--write]            delete unused sky-lint pragmas\n\
         \x20                                         (P002); prints a diff, applies\n\
         \x20                                         only with --write\n\
         \n\
         global flags: --seed N (default 42), --json on characterize,\n\
         \x20             --jobs N (worker threads for exp run and multi-zone\n\
         \x20             characterize; defaults to SKY_JOBS, then the machine's\n\
         \x20             available parallelism)"
    );
}

fn parse_az(name: &str) -> Result<AzId, String> {
    name.parse()
        .map_err(|_| format!("invalid availability zone {name:?}"))
}

fn parse_workload(name: &str) -> Result<WorkloadKind, String> {
    WorkloadKind::from_name(name).ok_or_else(|| {
        let names: Vec<&str> = WorkloadKind::ALL.iter().map(|k| k.name()).collect();
        format!(
            "unknown workload {name:?}; choose one of: {}",
            names.join(", ")
        )
    })
}

fn engine_for(seed: u64) -> FaasEngine {
    FaasEngine::new(Catalog::paper_world(seed), FleetConfig::new(seed))
}

fn cmd_world(seed: u64) -> Result<(), String> {
    let catalog = Catalog::paper_world(seed);
    let mut table = Table::new(
        format!("skyward world (seed {seed}): 41 regions, 3 providers"),
        &["provider", "region", "zones"],
    );
    for region in catalog.regions() {
        let zones: Vec<String> = catalog
            .azs_in_region(&region.id)
            .map(|az| az.id.to_string())
            .collect();
        table.row(&[
            region.provider.platform_name().to_string(),
            region.id.to_string(),
            zones.join(" "),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_workloads() -> Result<(), String> {
    let mut table = Table::new(
        "Table-1 workload suite",
        &["name", "vCPUs", "base runtime", "description"],
    );
    for kind in WorkloadKind::ALL {
        table.row(&[
            kind.name().to_string(),
            format!("{:.1}", kind.vcpus()),
            format!("{}", PerfModel::base_runtime(kind)),
            kind.description().to_string(),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_characterize(args: &Args, seed: u64) -> Result<(), String> {
    let raw = args.positional(1).ok_or("characterize needs an <az>")?;
    let azs: Vec<AzId> = raw
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| parse_az(s.trim()))
        .collect::<Result<_, _>>()?;
    if azs.is_empty() {
        return Err("characterize needs at least one <az>".into());
    }
    let polls = args.flag_u64("polls", 6).map_err(|e| e.to_string())? as usize;
    let json = args.flag("json").is_some();
    let stream = args.flag("stream").is_some();
    // `Jobs::from_env` also honours `--jobs N` from argv, but routing it
    // through the parser gives proper errors for bad values.
    let jobs = match args.flag("jobs") {
        Some(_) => Jobs::new(args.flag_u64("jobs", 1).map_err(|e| e.to_string())? as usize),
        None => Jobs::from_env(),
    };

    // Each zone is an independent sweep cell with its own seeded engine,
    // so multi-zone characterizations fan out over `--jobs` threads and
    // print in the order the zones were named.
    let reports = sweep::run(azs, jobs, |_, az| {
        characterize_zone(az, polls, seed, json, stream)
    });
    for report in reports {
        println!("{}", report?);
    }
    Ok(())
}

/// Characterize one zone in a fresh engine and render its report (one
/// JSON document per zone under `--json`). With `stream`, the one-shot
/// campaign seeds a [`StreamingCharacterizer`] that then watches a round
/// of production traffic through the engine's observation hook.
fn characterize_zone(
    az: &AzId,
    polls: usize,
    seed: u64,
    json: bool,
    stream: bool,
) -> Result<String, String> {
    let mut engine = engine_for(seed);
    let spec = engine
        .catalog()
        .az(az)
        .ok_or_else(|| format!("{az} is not in the catalog (try `skyward world`)"))?;
    let account = engine.create_account(spec.provider);
    let mut campaign = SamplingCampaign::new(
        &mut engine,
        account,
        az,
        CampaignConfig {
            deployments: polls.max(2),
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    campaign.run_polls(&mut engine, polls);
    let mix = campaign.characterization().to_mix();
    let streaming = if stream {
        Some(stream_production_round(
            &mut engine,
            account,
            az,
            seed,
            &mix,
        )?)
    } else {
        None
    };
    if json {
        let mut value = serde_json::json!({
            "az": az.to_string(),
            "polls": polls,
            "unique_fis": campaign.characterization().unique_fis(),
            "cost_usd": campaign.total_cost_usd(),
            "mix": mix.iter().map(|(cpu, share)| {
                serde_json::json!({"cpu": cpu.model_name(), "share": share})
            }).collect::<Vec<_>>(),
        });
        if let Some(s) = &streaming {
            let entry = serde_json::json!({
                "observations": s.observations,
                "cusum_x10k": s.cusum_x10k,
                "detector_fired": s.fired,
                "mix": s.mix.iter().map(|(cpu, share)| {
                    serde_json::json!({"cpu": cpu.model_name(), "share": share})
                }).collect::<Vec<_>>(),
            });
            if let serde_json::Value::Map(entries) = &mut value {
                entries.push(("streaming".to_string(), entry));
            }
        }
        return Ok(serde_json::to_string_pretty(&value).expect("serializable"));
    }
    let mut table = Table::new(
        format!("{az}: CPU characterization after {polls} poll(s)"),
        &["cpu", "share %", "model"],
    );
    for (cpu, share) in mix.iter() {
        table.row(&[
            cpu.short_label().to_string(),
            format!("{:.1}", share * 100.0),
            cpu.model_name().to_string(),
        ]);
    }
    let mut report = format!(
        "{}\n{} unique FIs from {} reports; spend ${:.4}",
        table.render(),
        campaign.characterization().unique_fis(),
        campaign.characterization().reports(),
        campaign.total_cost_usd()
    );
    if let Some(s) = &streaming {
        let mut out = Table::new(
            format!(
                "{az}: streaming estimate after {} observed completion(s)",
                s.observations
            ),
            &["cpu", "share %", "model"],
        );
        for (cpu, share) in s.mix.iter() {
            out.row(&[
                cpu.short_label().to_string(),
                format!("{:.1}", share * 100.0),
                cpu.model_name().to_string(),
            ]);
        }
        report.push_str(&format!(
            "\n{}\ndetector: cusum {} x10k, {}",
            out.render(),
            s.cusum_x10k,
            if s.fired {
                "FIRED (re-probe recommended)"
            } else {
                "quiet"
            }
        ));
    }
    Ok(report)
}

/// What one `--stream` round observed.
struct StreamingReport {
    observations: u64,
    cusum_x10k: i64,
    fired: bool,
    mix: sky_core::cloud::CpuMix,
}

/// Seed a streaming characterizer with the campaign's snapshot, then run
/// a short round of production traffic through the observation hook and
/// report the decayed estimate plus the detector state.
fn stream_production_round(
    engine: &mut FaasEngine,
    account: sky_core::faas::AccountId,
    az: &AzId,
    seed: u64,
    probed: &sky_core::cloud::CpuMix,
) -> Result<StreamingReport, String> {
    let dep = engine
        .deploy(account, az, 2048, Arch::X86_64)
        .map_err(|e| e.to_string())?;
    let mut chr = StreamingCharacterizer::new(StreamingConfig::default());
    chr.record_probe(az, engine.now(), probed);
    engine.advance_by(SimDuration::from_mins(10));
    engine.set_observation_hook(true);
    let mut profiler = WorkloadProfiler::new();
    profiler.profile(engine, dep, WorkloadKind::Zipper, 160, 200, seed);
    engine.set_observation_hook(false);
    for report in engine.take_observations(az) {
        chr.observe(az, &report);
    }
    let mix = chr
        .estimate(az)
        .ok_or("no completions observed in the production round")?;
    Ok(StreamingReport {
        observations: chr.observations(az),
        cusum_x10k: chr.cusum_x10k(az),
        fired: chr.detector_fired(az),
        mix,
    })
}

fn cmd_saturate(args: &Args, seed: u64) -> Result<(), String> {
    let az = parse_az(args.positional(1).ok_or("saturate needs an <az>")?)?;
    let mut engine = engine_for(seed);
    let spec = engine
        .catalog()
        .az(&az)
        .ok_or_else(|| format!("{az} is not in the catalog"))?;
    let account = engine.create_account(spec.provider);
    let mut campaign = SamplingCampaign::new(&mut engine, account, &az, CampaignConfig::default())
        .map_err(|e| e.to_string())?;
    let result = campaign.run_until_saturation(&mut engine);
    let mut table = Table::new(
        format!("{az}: sequential polls to the failure point"),
        &["poll", "new FIs", "cumulative", "failure %"],
    );
    for p in &result.polls {
        table.row(&[
            (p.index + 1).to_string(),
            p.new_fis.to_string(),
            p.cumulative_fis.to_string(),
            format!("{:.1}", p.failure_rate() * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "saturated={} after {} polls; {} unique FIs; ${:.3} spent; polls to 95% accuracy: {}",
        result.saturated,
        result.polls.len(),
        result.total_fis(),
        result.total_cost_usd,
        result
            .polls_to_accuracy(5.0)
            .map(|p| p.to_string())
            .unwrap_or_else(|| "-".into()),
    );
    Ok(())
}

fn cmd_profile(args: &Args, seed: u64) -> Result<(), String> {
    let kind = parse_workload(args.positional(1).ok_or("profile needs a <workload>")?)?;
    let az = parse_az(args.positional(2).ok_or("profile needs an <az>")?)?;
    let runs = args.flag_u64("runs", 600).map_err(|e| e.to_string())? as usize;
    let mut engine = engine_for(seed);
    let account = engine.create_account(Provider::Aws);
    let dep = engine
        .deploy(account, &az, 2048, Arch::X86_64)
        .map_err(|e| e.to_string())?;
    let mut profiler = WorkloadProfiler::new();
    let run = profiler.profile(&mut engine, dep, kind, runs, 200, seed);
    let table = profiler.table();
    let mut out = Table::new(
        format!(
            "{kind} in {az}: observed runtime by CPU ({} completed)",
            run.completed
        ),
        &["cpu", "mean ms", "vs 2.5GHz", "samples"],
    );
    for (cpu, ms) in table.ranking(kind) {
        let norm = table
            .normalized(kind, CpuType::IntelXeon2_5)
            .iter()
            .find(|&&(c, _)| c == cpu)
            .map(|&(_, f)| format!("{f:.2}x"))
            .unwrap_or_else(|| "-".into());
        out.row(&[
            cpu.short_label().to_string(),
            format!("{ms:.0}"),
            norm,
            table.samples(kind, cpu).to_string(),
        ]);
    }
    println!("{}", out.render());
    println!("profiling spend ${:.3}", run.cost_usd);
    Ok(())
}

/// Resolve `--scale` (or `SKY_SCALE`) through the one strict parser:
/// near-misses like `Quick` or `ful` are errors, not silent fallbacks.
fn resolve_scale(args: &Args) -> Result<Scale, String> {
    match args.flag("scale") {
        Some(value) => Scale::parse(value),
        None => Scale::from_env(),
    }
}

/// Resolve `--jobs`, falling back to `SKY_JOBS` / machine parallelism.
fn resolve_jobs(args: &Args) -> Result<Jobs, String> {
    match args.flag("jobs") {
        Some(_) => Ok(Jobs::new(
            args.flag_u64("jobs", 1).map_err(|e| e.to_string())? as usize,
        )),
        None => Ok(Jobs::from_env()),
    }
}

/// `skyward exp` — the experiment registry multiplexer. Replaces the 24
/// former one-off binaries: every figure/table/ablation is a registered
/// [`registry::Experiment`] run through one entry point.
fn cmd_exp(args: &Args, seed: u64) -> Result<(), String> {
    match args.positional(1) {
        None | Some("list") => {
            expect_arity(args, 2)?;
            cmd_exp_list()
        }
        Some("describe") => {
            expect_arity(args, 3)?;
            cmd_exp_describe(args)
        }
        Some("run") => cmd_exp_run(args, seed),
        Some(other) => Err(format!(
            "unknown exp subcommand {other:?} (list|describe|run)"
        )),
    }
}

fn cmd_exp_list() -> Result<(), String> {
    let mut table = Table::new(
        format!("registered experiments ({})", registry::all().len()),
        &["name", "golden", "description"],
    );
    for exp in registry::all() {
        table.row(&[
            exp.name().to_string(),
            if exp.deterministic() { "yes" } else { "-" }.to_string(),
            exp.description().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("run one with `skyward exp run <name>`, everything with `skyward exp run --all`.");
    Ok(())
}

fn cmd_exp_describe(args: &Args) -> Result<(), String> {
    let name = args.positional(2).ok_or("describe needs an <experiment>")?;
    let exp = registry::find(name).ok_or_else(|| unknown_experiment(name))?;
    println!("{}: {}", exp.name(), exp.description());
    println!(
        "deterministic: {} (byte-identical for any --jobs at a fixed scale and seed)",
        if exp.deterministic() {
            "yes"
        } else {
            "no — wall-clock measurements"
        }
    );
    for scale in [Scale::Full, Scale::Quick] {
        let params = exp.params(scale);
        if params.is_empty() {
            continue;
        }
        let mut table = Table::new(
            format!("parameters at {} scale", scale.name()),
            &["parameter", "value"],
        );
        for (key, value) in params {
            table.row(&[key.to_string(), value]);
        }
        println!("{}", table.render());
    }
    println!("artifact: results/{}.txt", exp.name());
    Ok(())
}

fn unknown_experiment(name: &str) -> String {
    let names: Vec<&str> = registry::all().iter().map(|e| e.name()).collect();
    format!(
        "unknown experiment {name:?}; choose one of: {}",
        names.join(", ")
    )
}

// Timing the experiment runs is a deliberate wall-clock read; the cli
// crate is on the sky-lint D002 allowlist, and the clippy ban is lifted
// to match.
#[allow(clippy::disallowed_methods)]
fn cmd_exp_run(args: &Args, seed: u64) -> Result<(), String> {
    let scale = resolve_scale(args)?;
    let jobs = resolve_jobs(args)?;
    let exps: Vec<&'static dyn registry::Experiment> = if args.flag("all").is_some() {
        registry::all().to_vec()
    } else {
        let names: Vec<&str> = (2..args.n_positionals())
            .filter_map(|i| args.positional(i))
            .collect();
        if names.is_empty() {
            return Err("exp run needs experiment names or --all".into());
        }
        names
            .iter()
            .map(|name| registry::find(name).ok_or_else(|| unknown_experiment(name)))
            .collect::<Result<_, _>>()?
    };
    let out_dir = args.flag("out").map(std::path::PathBuf::from);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }

    eprintln!(
        "running {} experiment(s) at {} scale, seed {seed}, {} worker(s)...",
        exps.len(),
        scale.name(),
        jobs.get()
    );
    let started = std::time::Instant::now();
    let outcomes = registry::run_many(&exps, scale, jobs, seed);
    let elapsed = started.elapsed().as_secs_f64();

    let mut failures = Vec::new();
    for (name, outcome) in outcomes {
        match outcome {
            Ok(output) => {
                match &out_dir {
                    Some(dir) => {
                        let path = dir.join(format!("{name}.txt"));
                        std::fs::write(&path, output.text.as_bytes())
                            .map_err(|e| format!("writing {}: {e}", path.display()))?;
                        eprintln!("  ok {name} -> {}", path.display());
                    }
                    None => print!("{}", output.text),
                }
                for artifact in &output.artifacts {
                    let path = registry::repo_root().join(&artifact.file_name);
                    std::fs::write(&path, artifact.contents.as_bytes())
                        .map_err(|e| format!("writing {}: {e}", path.display()))?;
                    eprintln!("  ok {name} artifact -> {}", path.display());
                }
            }
            Err(message) => {
                eprintln!("  FAILED {name}: {message}");
                failures.push(name);
            }
        }
    }
    eprintln!("finished in {elapsed:.1}s");
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} experiment(s) failed: {}",
            failures.len(),
            failures.join(", ")
        ))
    }
}

fn cmd_faults(args: &Args) -> Result<(), String> {
    let scale = resolve_scale(args)?;
    let jobs = resolve_jobs(args)?;
    let rows = sky_bench::faults::fig_faults_rows(scale, jobs);
    print!("{}", sky_bench::faults::render_fig_faults(&rows));
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let scale = resolve_scale(args)?;
    let jobs = resolve_jobs(args)?;
    let format = args.flag("format").unwrap_or("table");
    let snapshot = sky_bench::report::report_snapshot(scale, jobs);
    match format {
        "table" => print!("{}", sky_bench::report::render_report(&snapshot)),
        "prom" => print!("{}", snapshot.to_prometheus_text()),
        "json" => print!("{}", snapshot.to_json()),
        other => return Err(format!("unknown format {other:?} (table|prom|json)")),
    }
    Ok(())
}

/// `skyward lint` — the determinism static-analysis pass, same engine
/// as the standalone `sky-lint` binary. Exits 1 when findings exist so
/// scripts and CI can gate on it. `--fix-pragmas` switches to the
/// stale-pragma cleanup mode: print the planned edits as a diff, apply
/// them only under `--write`.
fn cmd_lint(args: &Args) -> Result<(), String> {
    let format = args.flag("format").unwrap_or("human");
    if format != "human" && format != "json" {
        return Err(format!("unknown format {format:?} (human|json)"));
    }
    let root = match args.flag("root") {
        Some(path) => std::path::PathBuf::from(path),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            sky_lint::find_workspace_root(&cwd)
                .ok_or("no workspace root (Cargo.toml with [workspace]) above the current directory; pass --root PATH")?
        }
    };
    if args.flag("fix-pragmas").is_some() {
        let fixes = sky_lint::plan_pragma_fixes(&root).map_err(|e| e.to_string())?;
        print!("{}", sky_lint::render_pragma_fixes(&fixes));
        if fixes.is_empty() {
            return Ok(());
        }
        if args.flag("write").is_some() {
            let n = sky_lint::apply_pragma_fixes(&root, &fixes).map_err(|e| e.to_string())?;
            println!("applied fixes in {n} file(s)");
        } else {
            println!("dry run: pass --write to apply");
        }
        return Ok(());
    }
    let jobs = args.flag_u64("jobs", 1).map_err(|e| e.to_string())?.max(1) as usize;
    let findings = sky_lint::lint_workspace_with_jobs(&root, jobs).map_err(|e| e.to_string())?;
    match format {
        "json" => print!("{}", sky_lint::render_json(&findings)),
        _ => print!("{}", sky_lint::render_human(&findings)),
    }
    if findings.is_empty() {
        Ok(())
    } else {
        std::process::exit(1);
    }
}

fn cmd_route(args: &Args, seed: u64) -> Result<(), String> {
    let kind = parse_workload(args.positional(1).ok_or("route needs a <workload>")?)?;
    let baseline_az = parse_az(args.flag("baseline").ok_or("route needs --baseline <az>")?)?;
    let mut candidates: Vec<AzId> = Vec::new();
    for name in args.flag_list("candidates") {
        candidates.push(parse_az(&name)?);
    }
    if candidates.is_empty() {
        candidates.push(baseline_az.clone());
    }
    let burst = args.flag_u64("burst", 400).map_err(|e| e.to_string())? as usize;
    let policy_name = args.flag("policy").unwrap_or("hybrid");
    let policy = match policy_name {
        "baseline" => RoutingPolicy::Baseline {
            az: baseline_az.clone(),
        },
        "regional" => RoutingPolicy::Regional {
            candidates: candidates.clone(),
        },
        "retry-slow" => RoutingPolicy::Retry {
            az: baseline_az.clone(),
            mode: RetryMode::RetrySlow,
        },
        "focus" => RoutingPolicy::Retry {
            az: baseline_az.clone(),
            mode: RetryMode::FocusFastest,
        },
        "hybrid" => RoutingPolicy::Hybrid {
            candidates: candidates.clone(),
            mode: RetryMode::RetrySlow,
        },
        "ucb-az" => RoutingPolicy::UcbAz {
            candidates: candidates.clone(),
        },
        "thompson-az" => RoutingPolicy::ThompsonAz {
            candidates: candidates.clone(),
        },
        other => return Err(format!("unknown policy {other:?}")),
    };

    let mut engine = engine_for(seed);
    let account = engine.create_account(Provider::Aws);
    let mut deployments = std::collections::BTreeMap::new();
    let mut zones = candidates.clone();
    if !zones.contains(&baseline_az) {
        zones.push(baseline_az.clone());
    }
    for az in &zones {
        let dep = engine
            .deploy(account, az, 2048, Arch::X86_64)
            .map_err(|e| e.to_string())?;
        deployments.insert(az.clone(), dep);
    }

    eprintln!("profiling {kind} (600 runs)...");
    let mut profiler = WorkloadProfiler::new();
    profiler.profile(&mut engine, deployments[&baseline_az], kind, 600, 200, seed);
    let table = profiler.into_table();
    engine.advance_by(SimDuration::from_mins(20));

    eprintln!("characterizing {} zone(s)...", zones.len());
    let mut store = CharacterizationStore::new();
    for az in &zones {
        let mut campaign = SamplingCampaign::new(
            &mut engine,
            account,
            az,
            CampaignConfig {
                deployments: 4,
                ..Default::default()
            },
        )
        .map_err(|e| e.to_string())?;
        let at = engine.now();
        campaign.run_polls(&mut engine, 4);
        store.record(
            az,
            at,
            campaign.characterization().to_mix(),
            campaign.characterization().unique_fis(),
            campaign.total_cost_usd(),
        );
    }

    let router = SmartRouter::new(store, table, RouterConfig::default());
    let resolve = |az: &AzId| deployments.get(az).copied();
    let base = router.run_burst(
        &mut engine,
        kind,
        burst,
        &RoutingPolicy::Baseline {
            az: baseline_az.clone(),
        },
        resolve,
    );
    engine.advance_by(SimDuration::from_mins(15));
    let optimized = router.run_burst(&mut engine, kind, burst, &policy, resolve);
    let per = |r: &sky_core::BurstReport| r.total_cost_usd() / r.completed.max(1) as f64;

    let mut out = Table::new(
        format!("{kind}: {policy_name} vs baseline ({baseline_az})"),
        &[
            "strategy",
            "az",
            "$ / 1k requests",
            "mean ms",
            "retried",
            "errors",
        ],
    );
    for (label, report) in [("baseline", &base), (policy_name, &optimized)] {
        out.row(&[
            label.to_string(),
            report.az.to_string(),
            format!("{:.4}", 1_000.0 * per(report)),
            format!("{:.0}", report.mean_billed_ms),
            report.retried.to_string(),
            report.errors.to_string(),
        ]);
    }
    println!("{}", out.render());
    println!(
        "savings: {:+.1}% (characterization spend ${:.3})",
        savings_fraction(per(&base), per(&optimized)) * 100.0,
        router.store.total_cost_usd()
    );
    Ok(())
}
