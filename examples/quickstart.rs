//! Quickstart: build a world, characterize a zone, and see the hidden
//! hardware heterogeneity the paper exploits.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use sky_core::cloud::{Catalog, Provider};
use sky_core::faas::{FaasEngine, FleetConfig};
use sky_core::{CampaignConfig, SamplingCampaign};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A seeded 41-region world (same seed => same world, always).
    let mut engine = FaasEngine::new(Catalog::paper_world(7), FleetConfig::new(7));
    let account = engine.create_account(Provider::Aws);

    // 2. Deploy the sampling fleet to one availability zone and fire a
    //    few 1,000-request polls (paper §3.1).
    let az = "us-west-1b".parse()?;
    let mut campaign = SamplingCampaign::new(
        &mut engine,
        account,
        &az,
        CampaignConfig {
            deployments: 6,
            ..Default::default()
        },
    )?;
    for _ in 0..5 {
        let stats = campaign.poll_once(&mut engine);
        println!(
            "poll {}: {} unique FIs observed (cumulative {}), ${:.4}",
            stats.index + 1,
            stats.unique_fis,
            stats.cumulative_fis,
            stats.cost_usd
        );
    }

    // 3. The characterization: the zone's hidden CPU distribution, seen
    //    purely through SAAF reports.
    println!("\nestimated CPU distribution of {az}:");
    for (cpu, share) in campaign.characterization().to_mix().iter() {
        println!(
            "  {:8} {:5.1}%  ({})",
            cpu.short_label(),
            share * 100.0,
            cpu.model_name()
        );
    }
    println!(
        "\n{} unique function instances, {} reports, total spend ${:.4}",
        campaign.characterization().unique_fis(),
        campaign.characterization().reports(),
        campaign.total_cost_usd()
    );
    Ok(())
}
