//! The full sky-computing loop from the paper: profile a workload, learn
//! zone characterizations, then compare baseline / retry / hybrid routing
//! over several simulated days.
//!
//! ```bash
//! cargo run --release --example smart_routing_campaign
//! ```

use sky_core::cloud::{Arch, Catalog, Provider};
use sky_core::faas::{FaasEngine, FleetConfig};
use sky_core::sim::SimDuration;
use sky_core::workloads::WorkloadKind;
use sky_core::{
    savings_fraction, CampaignConfig, CharacterizationStore, RetryMode, RouterConfig,
    RoutingPolicy, SamplingCampaign, SmartRouter, WorkloadProfiler,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = FaasEngine::new(Catalog::paper_world(11), FleetConfig::new(11));
    let account = engine.create_account(Provider::Aws);
    let kind = WorkloadKind::GraphBfs;
    let baseline_az: sky_core::cloud::AzId = "us-west-1b".parse()?;
    let candidates: Vec<sky_core::cloud::AzId> = vec![
        "us-west-1a".parse()?,
        "us-west-1b".parse()?,
        "sa-east-1a".parse()?,
    ];

    // Deployments in every candidate zone (in production this is the sky
    // mesh; here three explicit endpoints keep the example focused).
    let mut deployments = std::collections::BTreeMap::new();
    for az in &candidates {
        deployments.insert(az.clone(), engine.deploy(account, az, 2048, Arch::X86_64)?);
    }

    // 1. Profile the workload once to learn its CPU hierarchy.
    let mut profiler = WorkloadProfiler::new();
    profiler.profile(&mut engine, deployments[&baseline_az], kind, 600, 200, 1);
    let table = profiler.into_table();
    println!("learned ranking for {kind}: {:?}\n", table.ranking(kind));
    engine.advance_by(SimDuration::from_mins(20));

    // 2. Daily loop: refresh characterizations, route, compare.
    let mut store = CharacterizationStore::new();
    let start = engine.now();
    for day in 0..5u64 {
        engine.advance_to(start + SimDuration::from_days(day) + SimDuration::from_hours(2));
        for az in &candidates {
            let mut campaign = SamplingCampaign::new(
                &mut engine,
                account,
                az,
                CampaignConfig {
                    deployments: 4,
                    ..Default::default()
                },
            )?;
            let at = engine.now();
            campaign.run_polls(&mut engine, 4);
            store.record(
                az,
                at,
                campaign.characterization().to_mix(),
                campaign.characterization().unique_fis(),
                campaign.total_cost_usd(),
            );
        }
        let router = SmartRouter::new(store.clone(), table.clone(), RouterConfig::default());
        let resolve = |az: &sky_core::cloud::AzId| deployments.get(az).copied();
        let baseline = router.run_burst(
            &mut engine,
            kind,
            400,
            &RoutingPolicy::Baseline {
                az: baseline_az.clone(),
            },
            resolve,
        );
        engine.advance_by(SimDuration::from_mins(15));
        let hybrid = router.run_burst(
            &mut engine,
            kind,
            400,
            &RoutingPolicy::Hybrid {
                candidates: candidates.clone(),
                mode: RetryMode::RetrySlow,
            },
            resolve,
        );
        let per = |r: &sky_core::BurstReport| r.total_cost_usd() / r.completed.max(1) as f64;
        println!(
            "day {day}: baseline(us-west-1b) ${:.4}/1k vs hybrid({}) ${:.4}/1k -> {:+.1}% savings, {} retried",
            1_000.0 * per(&baseline),
            hybrid.az,
            1_000.0 * per(&hybrid),
            savings_fraction(per(&baseline), per(&hybrid)) * 100.0,
            hybrid.retried,
        );
    }
    println!(
        "\ntotal characterization spend: ${:.2}",
        store.total_cost_usd()
    );
    Ok(())
}
