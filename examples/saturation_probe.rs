//! Reproduce the paper's EX-1 saturation evidence interactively: poll a
//! zone until >50% of requests fail, then show that a second, fully
//! independent account hits the same wall immediately.
//!
//! ```bash
//! cargo run --release --example saturation_probe
//! ```

use sky_core::cloud::{Catalog, Provider};
use sky_core::faas::{FaasEngine, FleetConfig};
use sky_core::{CampaignConfig, SamplingCampaign};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = FaasEngine::new(Catalog::paper_world(3), FleetConfig::new(3));
    let az = "eu-north-1a".parse()?; // the smallest pool in the catalog

    let account_a = engine.create_account(Provider::Aws);
    let mut campaign_a =
        SamplingCampaign::new(&mut engine, account_a, &az, CampaignConfig::default())?;
    println!("account A polls {az} until the failure point:");
    let result = campaign_a.run_until_saturation(&mut engine);
    for poll in &result.polls {
        println!(
            "  poll {:>2}: {:>4} new FIs, {:>5.1}% failed",
            poll.index + 1,
            poll.new_fis,
            poll.failure_rate() * 100.0
        );
    }
    println!(
        "=> saturated after {} polls, {} unique FIs, ${:.3} spent\n",
        result.polls.len(),
        result.total_fis(),
        result.total_cost_usd
    );

    // A completely independent account, immediately afterwards.
    let account_b = engine.create_account(Provider::Aws);
    let mut campaign_b =
        SamplingCampaign::new(&mut engine, account_b, &az, CampaignConfig::default())?;
    let first = campaign_b.poll_once(&mut engine);
    println!(
        "account B's very first poll: {:.1}% failures ({} of {})",
        first.failure_rate() * 100.0,
        first.failures,
        first.requests
    );
    println!("=> the zone's provisioned pool is exhausted, not a per-account limit.");
    Ok(())
}
