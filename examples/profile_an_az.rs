//! Profile the Table-1 workloads in one availability zone and print the
//! per-CPU runtime hierarchy the router exploits (Figure 9 in miniature).
//!
//! ```bash
//! cargo run --release --example profile_an_az
//! ```

use sky_core::cloud::{Arch, Catalog, CpuType, Provider};
use sky_core::faas::{FaasEngine, FleetConfig};
use sky_core::sim::SimDuration;
use sky_core::workloads::WorkloadKind;
use sky_core::WorkloadProfiler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = FaasEngine::new(Catalog::paper_world(7), FleetConfig::new(7));
    let account = engine.create_account(Provider::Aws);
    let az = "us-west-1b".parse()?;
    let deployment = engine.deploy(account, &az, 2048, Arch::X86_64)?;

    let mut profiler = WorkloadProfiler::new();
    for kind in [
        WorkloadKind::Zipper,
        WorkloadKind::LogisticRegression,
        WorkloadKind::DiskWriter,
    ] {
        println!("profiling {kind} with 400 invocations in {az}...");
        let run = profiler.profile(&mut engine, deployment, kind, 400, 150, 9);
        println!(
            "  completed {} / errors {} / ${:.3}",
            run.completed, run.errors, run.cost_usd
        );
        engine.advance_by(SimDuration::from_mins(12));
    }

    let table = profiler.table();
    println!("\nobserved runtime normalized to the 2.5GHz baseline (>1 is slower):");
    for kind in [
        WorkloadKind::Zipper,
        WorkloadKind::LogisticRegression,
        WorkloadKind::DiskWriter,
    ] {
        print!("  {:20}", kind.name());
        for (cpu, factor) in table.normalized(kind, CpuType::IntelXeon2_5) {
            print!("  {}={:.2}", cpu.short_label(), factor);
        }
        println!();
    }

    // The passive characterization came along for free (paper §4.6).
    if let Some(passive) = profiler.passive_characterization(&az) {
        println!(
            "\npassive characterization from the same traffic: {} unique FIs, mix {:?}",
            passive.unique_fis(),
            passive.to_mix()
        );
    }
    Ok(())
}
